//! Structural fault overlays applied to a simulation run.

use tmr_netlist::{CellId, NetId, PortId};

/// A reference to a specific reader of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkRef {
    /// Input pin `pin` of a cell.
    CellPin {
        /// The reading cell.
        cell: CellId,
        /// Zero-based pin index.
        pin: usize,
    },
    /// A top-level output port.
    OutputPort(PortId),
}

/// The functional effect of one injected configuration upset, expressed at the
/// netlist level.
///
/// `tmr-faultsim` translates a flipped configuration bit into one of these
/// overlays by consulting the routed design's node/PIP usage database; the
/// simulator then applies the overlay without re-deriving the whole design
/// from the faulty bitstream, which keeps campaigns fast.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultOverlay {
    /// Replace the truth table of a LUT cell (upset in a LUT bit).
    pub lut_overrides: Vec<(CellId, u64)>,
    /// Replace the power-up value of a flip-flop (upset in an FF init bit).
    pub ff_init_overrides: Vec<(CellId, bool)>,
    /// Sinks disconnected from their net (routing *Open*): they read `X`.
    pub opened_sinks: Vec<SinkRef>,
    /// Pairs of nets shorted together (routing *Bridge* / *Conflict*): all
    /// readers of either net observe the resolved value.
    pub shorted_nets: Vec<(NetId, NetId)>,
    /// Nets corrupted by a floating aggressor (routing *Input-Antenna*):
    /// all readers observe `X`.
    pub corrupted_nets: Vec<NetId>,
}

impl FaultOverlay {
    /// The empty overlay: the fault-free golden configuration.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if this overlay changes nothing.
    pub fn is_empty(&self) -> bool {
        self.lut_overrides.is_empty()
            && self.ff_init_overrides.is_empty()
            && self.opened_sinks.is_empty()
            && self.shorted_nets.is_empty()
            && self.corrupted_nets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultOverlay::none().is_empty());
        let overlay = FaultOverlay {
            corrupted_nets: vec![NetId::from_index(0)],
            ..FaultOverlay::none()
        };
        assert!(!overlay.is_empty());
    }
}
