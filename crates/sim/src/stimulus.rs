//! Stimulus generation for fault-injection campaigns.
//!
//! The paper drives the TMR design under test and the golden device with the
//! same input patterns every clock cycle. For TMR designs, the three
//! triplicated copies of an input (`x_tr0`, `x_tr1`, `x_tr2`) must receive the
//! same value, otherwise the comparison against the (non-TMR) golden design is
//! meaningless; [`random_vectors`] guarantees this by deriving the value of
//! each port from its *base* signal name and bit index only.

use crate::Trit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tmr_netlist::Netlist;

/// Splits a lowered port name `base[_tr<d>]_<bit>` into its base word-level
/// name and bit index; the TMR domain suffix is removed so that triplicated
/// copies share the same key.
pub(crate) fn port_key(port_name: &str) -> (String, u32) {
    let (prefix, bit) = match port_name.rsplit_once('_') {
        Some((prefix, bit)) => match bit.parse::<u32>() {
            Ok(bit) => (prefix, bit),
            Err(_) => (port_name, 0),
        },
        None => (port_name, 0),
    };
    let base = match prefix.rsplit_once("_tr") {
        Some((base, domain))
            if domain.chars().all(|c| c.is_ascii_digit()) && !domain.is_empty() =>
        {
            base
        }
        _ => prefix,
    };
    (base.to_string(), bit)
}

/// A reusable input-stimulus sequence.
///
/// A fault-injection campaign replays the *same* input patterns for the
/// golden run and for every injected fault, so the vectors are generated once
/// and shared — across faults and, in the parallel campaign engine, across
/// worker threads (the type is immutable after construction and therefore
/// `Sync`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    vectors: Vec<Vec<Trit>>,
}

impl Stimulus {
    /// Wraps explicit per-cycle input vectors.
    pub fn from_vectors(vectors: Vec<Vec<Trit>>) -> Self {
        Self { vectors }
    }

    /// Generates `cycles` pseudo-random vectors for `netlist`; see
    /// [`random_vectors`].
    pub fn random(netlist: &Netlist, cycles: usize, seed: u64) -> Self {
        Self::from_vectors(random_vectors(netlist, cycles, seed))
    }

    /// Expands word-level samples onto the lowered bit ports; see
    /// [`word_vectors`].
    pub fn from_words(netlist: &Netlist, samples: &[HashMap<String, i64>]) -> Self {
        Self::from_vectors(word_vectors(netlist, samples))
    }

    /// The per-cycle input vectors, in simulator input-port order.
    pub fn vectors(&self) -> &[Vec<Trit>] {
        &self.vectors
    }

    /// Number of stimulus cycles.
    pub fn cycles(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the stimulus drives no cycles.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Generates `cycles` pseudo-random input vectors for `netlist`, in the input
/// port order of [`crate::Simulator::input_ports`] (which is the netlist's
/// port creation order). Triplicated TMR input copies receive identical
/// values; repeated calls with the same seed produce identical stimuli.
pub fn random_vectors(netlist: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<Trit>> {
    let ports: Vec<String> = netlist.input_ports().map(|(_, p)| p.name.clone()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vectors = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let mut values: HashMap<(String, u32), Trit> = HashMap::new();
        let vector: Vec<Trit> = ports
            .iter()
            .map(|name| {
                let key = port_key(name);
                *values
                    .entry(key)
                    .or_insert_with(|| Trit::from_bool(rng.gen::<bool>()))
            })
            .collect();
        vectors.push(vector);
    }
    vectors
}

/// Builds input vectors from word-level values: `samples[cycle]` maps a base
/// input name (e.g. `"x"`) to a signed value, which is expanded onto the
/// lowered bit ports (`x_3`, `x_tr1_3`, …) in two's complement.
pub fn word_vectors(netlist: &Netlist, samples: &[HashMap<String, i64>]) -> Vec<Vec<Trit>> {
    let ports: Vec<String> = netlist.input_ports().map(|(_, p)| p.name.clone()).collect();
    samples
        .iter()
        .map(|cycle| {
            ports
                .iter()
                .map(|name| {
                    let (base, bit) = port_key(name);
                    let value = cycle.get(&base).copied().unwrap_or(0);
                    Trit::from_bool((value >> bit) & 1 == 1)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::Domain;

    #[test]
    fn key_parsing_strips_bit_and_domain() {
        assert_eq!(port_key("x_3"), ("x".to_string(), 3));
        assert_eq!(port_key("x_tr1_3"), ("x".to_string(), 3));
        assert_eq!(port_key("data_in_tr2_10"), ("data_in".to_string(), 10));
        assert_eq!(port_key("clk"), ("clk".to_string(), 0));
        // A name whose last segment is not a number keeps the full name.
        assert_eq!(port_key("strange_name"), ("strange_name".to_string(), 0));
    }

    fn tmr_ports_netlist() -> Netlist {
        let mut nl = Netlist::new("stim");
        for d in 0..3 {
            for bit in 0..4 {
                nl.add_input_in_domain(format!("x_tr{d}_{bit}"), Domain::redundant(d));
            }
        }
        nl
    }

    #[test]
    fn triplicated_inputs_receive_identical_values() {
        let nl = tmr_ports_netlist();
        let vectors = random_vectors(&nl, 16, 42);
        assert_eq!(vectors.len(), 16);
        for vector in &vectors {
            assert_eq!(vector.len(), 12);
            for bit in 0..4 {
                assert_eq!(vector[bit], vector[4 + bit]);
                assert_eq!(vector[bit], vector[8 + bit]);
            }
        }
    }

    #[test]
    fn stimulus_replays_the_same_vectors() {
        let nl = tmr_ports_netlist();
        let stimulus = Stimulus::random(&nl, 8, 7);
        assert_eq!(stimulus.cycles(), 8);
        assert!(!stimulus.is_empty());
        assert_eq!(stimulus.vectors(), &random_vectors(&nl, 8, 7)[..]);
        // Word-level construction goes through the same expansion.
        let mut cycle = HashMap::new();
        cycle.insert("x".to_string(), 5i64);
        let words = Stimulus::from_words(&nl, &[cycle.clone()]);
        assert_eq!(words.vectors(), &word_vectors(&nl, &[cycle])[..]);
    }

    #[test]
    fn stimulus_is_deterministic_per_seed() {
        let nl = tmr_ports_netlist();
        assert_eq!(random_vectors(&nl, 8, 7), random_vectors(&nl, 8, 7));
        assert_ne!(random_vectors(&nl, 8, 7), random_vectors(&nl, 8, 8));
    }

    #[test]
    fn word_vectors_expand_twos_complement() {
        let nl = tmr_ports_netlist();
        let mut cycle = HashMap::new();
        cycle.insert("x".to_string(), -3i64); // 0b1101 in 4 bits
        let vectors = word_vectors(&nl, &[cycle]);
        let expected_bits = [true, false, true, true];
        for d in 0..3 {
            for (bit, &expected) in expected_bits.iter().enumerate() {
                assert_eq!(vectors[0][d * 4 + bit], Trit::from_bool(expected));
            }
        }
    }
}
