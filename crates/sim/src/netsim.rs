//! The three-valued netlist simulator.

use crate::{FaultOverlay, SinkRef, Trit};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tmr_netlist::{CellId, CellKind, NetId, Netlist, PortId};

/// Errors produced when building a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The netlist contains a combinational loop and cannot be levelized.
    CombinationalLoop {
        /// Number of cells involved.
        cells: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { cells } => {
                write!(
                    f,
                    "netlist contains a combinational loop through {cells} cell(s)"
                )
            }
        }
    }
}

impl Error for SimError {}

/// The output trace of a simulation run: one vector of output-port values per
/// simulated cycle, in [`Simulator::output_ports`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    /// `outputs[cycle][output_index]`.
    pub outputs: Vec<Vec<Trit>>,
}

impl SimTrace {
    /// The first cycle where the two traces differ, if any. An `X` in either
    /// trace counts as a difference unless both are `X` — a hardware
    /// comparator sees *some* level, so an unknown against the golden value is
    /// pessimistically treated as a mismatch (the paper's comparator flags any
    /// deviation from the golden device).
    pub fn first_mismatch(&self, other: &SimTrace) -> Option<usize> {
        for (cycle, (a, b)) in self.outputs.iter().zip(other.outputs.iter()).enumerate() {
            if a != b {
                return Some(cycle);
            }
        }
        None
    }

    /// Returns `true` if the traces are identical.
    pub fn matches(&self, other: &SimTrace) -> bool {
        self.first_mismatch(other).is_none()
    }
}

/// A compiled simulator for one netlist.
///
/// Construction levelizes the netlist once; each [`Simulator::run`] call then
/// evaluates the design cycle by cycle under an optional [`FaultOverlay`].
///
/// The compiled state is immutable, so a simulator can be `Clone`d cheaply
/// (the levelization is reused, not recomputed) — the parallel campaign
/// engine hands each worker thread its own copy.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    sequential: Vec<CellId>,
    input_ports: Vec<(PortId, NetId)>,
    output_ports: Vec<(PortId, NetId)>,
}

impl<'a> Simulator<'a> {
    /// Compiles a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if the netlist cannot be
    /// levelized.
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimError> {
        let levelization = netlist
            .levelize()
            .map_err(|l| SimError::CombinationalLoop {
                cells: l.cells.len(),
            })?;
        Ok(Self {
            netlist,
            order: levelization.order,
            sequential: netlist.sequential_cells(),
            input_ports: netlist.input_ports().map(|(id, p)| (id, p.net)).collect(),
            output_ports: netlist.output_ports().map(|(id, p)| (id, p.net)).collect(),
        })
    }

    /// The input ports, in the order expected by the stimulus vectors.
    pub fn input_ports(&self) -> &[(PortId, NetId)] {
        &self.input_ports
    }

    /// The output ports, in the order used by [`SimTrace::outputs`].
    pub fn output_ports(&self) -> &[(PortId, NetId)] {
        &self.output_ports
    }

    /// Names of the input ports, in stimulus order.
    pub fn input_port_names(&self) -> Vec<String> {
        self.input_ports
            .iter()
            .map(|&(id, _)| self.netlist.port(id).name.clone())
            .collect()
    }

    /// Runs the simulation replaying a prepared [`crate::Stimulus`] under
    /// `overlay`.
    pub fn run_stimulus(&self, stimulus: &crate::Stimulus, overlay: &FaultOverlay) -> SimTrace {
        self.run(stimulus.vectors(), overlay)
    }

    /// Runs the simulation for `vectors.len()` cycles under `overlay`.
    ///
    /// `vectors[cycle][i]` is the value driven on the `i`-th input port (in
    /// [`Simulator::input_ports`] order).
    ///
    /// # Panics
    ///
    /// Panics if a vector's length does not match the number of input ports.
    pub fn run(&self, vectors: &[Vec<Trit>], overlay: &FaultOverlay) -> SimTrace {
        let netlist = self.netlist;
        let mut net_values = vec![Trit::X; netlist.net_count()];

        // Flip-flop state, with init overrides applied.
        let ff_override: HashMap<CellId, bool> =
            overlay.ff_init_overrides.iter().copied().collect();
        let lut_override: HashMap<CellId, u64> = overlay.lut_overrides.iter().copied().collect();
        let mut ff_state: Vec<Trit> = self
            .sequential
            .iter()
            .map(|&cell| {
                let init = match netlist.cell(cell).kind {
                    CellKind::Dff { init } => init,
                    _ => unreachable!("sequential cells are flip-flops"),
                };
                Trit::from_bool(*ff_override.get(&cell).unwrap_or(&init))
            })
            .collect();

        // Fast lookups for overlay effects.
        let opened: std::collections::HashSet<SinkRef> =
            overlay.opened_sinks.iter().copied().collect();
        let corrupted: std::collections::HashSet<NetId> =
            overlay.corrupted_nets.iter().copied().collect();
        // Union-find-free short groups: map net -> partner list (tiny).
        let mut short_partner: HashMap<NetId, Vec<NetId>> = HashMap::new();
        for &(a, b) in &overlay.shorted_nets {
            short_partner.entry(a).or_default().push(b);
            short_partner.entry(b).or_default().push(a);
        }

        // Effective value seen by a reader of `net`.
        let effective = |net: NetId, sink: SinkRef, values: &[Trit]| -> Trit {
            if opened.contains(&sink) {
                return Trit::X;
            }
            let mut value = values[net.index()];
            if corrupted.contains(&net) {
                return Trit::X;
            }
            if let Some(partners) = short_partner.get(&net) {
                for &partner in partners {
                    value = value.resolve(values[partner.index()]);
                }
            }
            value
        };

        let mut outputs = Vec::with_capacity(vectors.len());
        for vector in vectors {
            assert_eq!(
                vector.len(),
                self.input_ports.len(),
                "stimulus vector length must match the number of input ports"
            );
            // Drive inputs and flip-flop outputs.
            for (&(_, net), &value) in self.input_ports.iter().zip(vector.iter()) {
                net_values[net.index()] = value;
            }
            for (&cell, &state) in self.sequential.iter().zip(ff_state.iter()) {
                net_values[netlist.cell(cell).output.index()] = state;
            }

            // Combinational settling. One pass suffices for a fault-free
            // netlist; shorts can couple later values back into earlier logic,
            // so iterate a few passes and fall back to `X` on the shorted nets
            // if values still oscillate.
            let max_passes = if overlay.shorted_nets.is_empty() {
                1
            } else {
                4
            };
            for pass in 0..max_passes {
                let mut changed = false;
                for &cell_id in &self.order {
                    let cell = netlist.cell(cell_id);
                    let inputs: Vec<Trit> = cell
                        .inputs
                        .iter()
                        .enumerate()
                        .map(|(pin, &net)| {
                            effective(net, SinkRef::CellPin { cell: cell_id, pin }, &net_values)
                        })
                        .collect();
                    let kind = match (cell.kind, lut_override.get(&cell_id)) {
                        (CellKind::Lut { k, .. }, Some(&init)) => CellKind::Lut { k, init },
                        (kind, _) => kind,
                    };
                    let value = eval_trit(kind, &inputs);
                    if net_values[cell.output.index()] != value {
                        net_values[cell.output.index()] = value;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
                if pass + 1 == max_passes && changed {
                    // Oscillation through a short: poison the shorted nets.
                    for &(a, b) in &overlay.shorted_nets {
                        net_values[a.index()] = Trit::X;
                        net_values[b.index()] = Trit::X;
                    }
                }
            }

            // Sample outputs.
            let sample: Vec<Trit> = self
                .output_ports
                .iter()
                .map(|&(port, net)| effective(net, SinkRef::OutputPort(port), &net_values))
                .collect();
            outputs.push(sample);

            // Clock edge: capture flip-flop D inputs.
            let next: Vec<Trit> = self
                .sequential
                .iter()
                .map(|&cell| {
                    let d = netlist.cell(cell).inputs[0];
                    effective(d, SinkRef::CellPin { cell, pin: 0 }, &net_values)
                })
                .collect();
            ff_state = next;
        }

        SimTrace { outputs }
    }
}

/// Evaluates a cell kind over three-valued inputs: if any input is `X`, the
/// output is `X` unless every completion of the unknown inputs produces the
/// same value (e.g. an AND gate with one input at 0 outputs 0 regardless).
fn eval_trit(kind: CellKind, inputs: &[Trit]) -> Trit {
    let unknown: Vec<usize> = inputs
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.is_unknown().then_some(i))
        .collect();
    if unknown.is_empty() {
        let bools: Vec<bool> = inputs.iter().map(|t| t.to_bool().expect("no X")).collect();
        return Trit::from_bool(kind.eval(&bools));
    }
    if unknown.len() > 8 {
        return Trit::X;
    }
    let mut result: Option<bool> = None;
    for combo in 0..(1usize << unknown.len()) {
        let bools: Vec<bool> = inputs
            .iter()
            .enumerate()
            .map(|(i, t)| match t.to_bool() {
                Some(b) => b,
                None => {
                    let position = unknown.iter().position(|&u| u == i).expect("is unknown");
                    (combo >> position) & 1 == 1
                }
            })
            .collect();
        let value = kind.eval(&bools);
        match result {
            None => result = Some(value),
            Some(prev) if prev != value => return Trit::X,
            Some(_) => {}
        }
    }
    Trit::from_bool(result.expect("at least one completion evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::{CellKind, Netlist};

    fn and_or_netlist() -> Netlist {
        // y = (a & b) | c, q = reg(y)
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_cell(
            "u_and",
            CellKind::Lut { k: 2, init: 0b1000 },
            vec![a, b],
            ab,
        )
        .unwrap();
        nl.add_cell("u_or", CellKind::Lut { k: 2, init: 0b1110 }, vec![ab, c], y)
            .unwrap();
        nl.add_cell("u_ff", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_output("y", y);
        nl.add_output("q", q);
        nl
    }

    fn v(bits: &[u8]) -> Vec<Trit> {
        bits.iter().map(|&b| Trit::from_bool(b == 1)).collect()
    }

    #[test]
    fn evaluates_combinational_and_sequential_logic() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let trace = sim.run(
            &[v(&[1, 1, 0]), v(&[0, 0, 0]), v(&[0, 0, 1])],
            &FaultOverlay::none(),
        );
        // Cycle 0: y = 1, q = init 0.
        assert_eq!(trace.outputs[0], vec![Trit::One, Trit::Zero]);
        // Cycle 1: y = 0, q = previous y = 1.
        assert_eq!(trace.outputs[1], vec![Trit::Zero, Trit::One]);
        // Cycle 2: y = 1 (c), q = 0.
        assert_eq!(trace.outputs[2], vec![Trit::One, Trit::Zero]);
    }

    #[test]
    fn x_propagation_is_exact_not_pessimistic() {
        // AND with one input 0 and one X must be 0, OR with one input 1 must be 1.
        assert_eq!(
            eval_trit(CellKind::And2, &[Trit::Zero, Trit::X]),
            Trit::Zero
        );
        assert_eq!(eval_trit(CellKind::Or2, &[Trit::One, Trit::X]), Trit::One);
        assert_eq!(eval_trit(CellKind::Xor2, &[Trit::One, Trit::X]), Trit::X);
        assert_eq!(
            eval_trit(CellKind::Maj3, &[Trit::One, Trit::One, Trit::X]),
            Trit::One
        );
        assert_eq!(
            eval_trit(CellKind::Maj3, &[Trit::One, Trit::Zero, Trit::X]),
            Trit::X
        );
    }

    #[test]
    fn lut_override_changes_function() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        // Turn the AND into a NAND.
        let overlay = FaultOverlay {
            lut_overrides: vec![(and_cell, 0b0111)],
            ..FaultOverlay::none()
        };
        let golden = sim.run(&[v(&[1, 1, 0])], &FaultOverlay::none());
        let faulty = sim.run(&[v(&[1, 1, 0])], &overlay);
        assert_ne!(golden.outputs, faulty.outputs);
        assert_eq!(golden.first_mismatch(&faulty), Some(0));
    }

    #[test]
    fn opened_sink_reads_x() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let or_cell = nl.find_cell("u_or").unwrap().0;
        let overlay = FaultOverlay {
            opened_sinks: vec![SinkRef::CellPin {
                cell: or_cell,
                pin: 1,
            }],
            ..FaultOverlay::none()
        };
        // With c opened (X) and a&b = 0, the OR output is X.
        let faulty = sim.run(&[v(&[0, 0, 1])], &overlay);
        assert_eq!(faulty.outputs[0][0], Trit::X);
        // With a&b = 1 the OR output is 1 regardless of the open.
        let masked = sim.run(&[v(&[1, 1, 1])], &overlay);
        assert_eq!(masked.outputs[0][0], Trit::One);
    }

    #[test]
    fn shorted_nets_resolve_values() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let a_net = nl
            .find_port("a", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let c_net = nl
            .find_port("c", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let overlay = FaultOverlay {
            shorted_nets: vec![(a_net, c_net)],
            ..FaultOverlay::none()
        };
        // a = 1, c = 0: readers of both see X; y = (X & 1) | X = X.
        let faulty = sim.run(&[v(&[1, 1, 0])], &overlay);
        assert_eq!(faulty.outputs[0][0], Trit::X);
        // a = c = 1: the short is harmless.
        let harmless = sim.run(&[v(&[1, 1, 1])], &overlay);
        assert_eq!(harmless.outputs[0][0], Trit::One);
    }

    #[test]
    fn corrupted_net_poisons_readers() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let ab_net = nl.find_cell("u_and").unwrap().1.output;
        let overlay = FaultOverlay {
            corrupted_nets: vec![ab_net],
            ..FaultOverlay::none()
        };
        let faulty = sim.run(&[v(&[1, 1, 0])], &overlay);
        assert_eq!(faulty.outputs[0][0], Trit::X);
    }

    #[test]
    fn ff_init_override_changes_first_cycle_only() {
        let nl = and_or_netlist();
        let sim = Simulator::new(&nl).unwrap();
        let ff = nl.find_cell("u_ff").unwrap().0;
        let overlay = FaultOverlay {
            ff_init_overrides: vec![(ff, true)],
            ..FaultOverlay::none()
        };
        let golden = sim.run(&[v(&[0, 0, 0]), v(&[0, 0, 0])], &FaultOverlay::none());
        let faulty = sim.run(&[v(&[0, 0, 0]), v(&[0, 0, 0])], &overlay);
        assert_eq!(golden.outputs[0][1], Trit::Zero);
        assert_eq!(faulty.outputs[0][1], Trit::One);
        assert_eq!(golden.outputs[1], faulty.outputs[1]);
    }

    #[test]
    fn trace_comparison_reports_first_mismatch() {
        let a = SimTrace {
            outputs: vec![vec![Trit::One], vec![Trit::Zero]],
        };
        let b = SimTrace {
            outputs: vec![vec![Trit::One], vec![Trit::X]],
        };
        assert!(a.matches(&a));
        assert_eq!(a.first_mismatch(&b), Some(1));
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut nl = Netlist::new("loop");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::Not, vec![y], x).unwrap();
        nl.add_cell("u2", CellKind::Not, vec![x], y).unwrap();
        nl.add_output("y", y);
        assert!(matches!(
            Simulator::new(&nl),
            Err(SimError::CombinationalLoop { .. })
        ));
    }
}
