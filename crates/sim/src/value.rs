//! The three-valued logic type.

use std::fmt;

/// A three-valued logic level: 0, 1 or unknown.
///
/// `X` models floating nodes (opens, antennas) and conflicting drivers
/// (bridges between nets carrying different values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown / conflicting / floating.
    X,
}

impl Trit {
    /// Converts a boolean to a trit.
    pub fn from_bool(value: bool) -> Self {
        if value {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Returns the boolean value, if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Returns `true` for [`Trit::X`].
    pub fn is_unknown(self) -> bool {
        self == Trit::X
    }

    /// Resolution of two drivers on the same electrical node: equal known
    /// values resolve to that value, anything else resolves to `X`.
    ///
    /// This models a bridging fault between two routed nets (the paper's
    /// *Bridge* and *Conflict* effects): where the shorted signals agree the
    /// level is preserved, where they disagree the level is undefined.
    pub fn resolve(self, other: Trit) -> Trit {
        if self == other {
            self
        } else {
            Trit::X
        }
    }
}

impl From<bool> for Trit {
    fn from(value: bool) -> Self {
        Trit::from_bool(value)
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trit::Zero => f.write_str("0"),
            Trit::One => f.write_str("1"),
            Trit::X => f.write_str("X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Trit::from_bool(true), Trit::One);
        assert_eq!(Trit::from(false), Trit::Zero);
        assert_eq!(Trit::One.to_bool(), Some(true));
        assert_eq!(Trit::X.to_bool(), None);
        assert!(Trit::X.is_unknown());
        assert!(!Trit::Zero.is_unknown());
    }

    #[test]
    fn resolution_matches_wired_logic() {
        assert_eq!(Trit::One.resolve(Trit::One), Trit::One);
        assert_eq!(Trit::Zero.resolve(Trit::Zero), Trit::Zero);
        assert_eq!(Trit::One.resolve(Trit::Zero), Trit::X);
        assert_eq!(Trit::X.resolve(Trit::One), Trit::X);
        assert_eq!(Trit::X.resolve(Trit::X), Trit::X);
    }

    #[test]
    fn display() {
        assert_eq!(Trit::Zero.to_string(), "0");
        assert_eq!(Trit::One.to_string(), "1");
        assert_eq!(Trit::X.to_string(), "X");
    }
}
