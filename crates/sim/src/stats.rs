//! Observability counters of the compiled fault-simulation engine.
//!
//! The event-driven engine earns its speedup from three mechanisms — skipped
//! dirty levels, 256-lane wide words and cone-deduplicated fault batching —
//! and every one of them can silently regress to its slow fallback without
//! changing a single campaign outcome. [`SimStats`] counts what actually
//! happened so benches, table binaries and CI can assert the fast paths were
//! taken instead of trusting wall-clock anecdotes.

use std::fmt;

/// Counters accumulated while evaluating packed fault-experiment words.
///
/// Every counter is a plain sum (except [`SimStats::max_lanes_per_word`],
/// a maximum), so per-shard blocks merge with [`SimStats::merge`] in any
/// order — sharded campaigns report the same totals as sequential ones.
///
/// The campaign layer deliberately excludes this block from result
/// equality: two backends that produce bit-identical outcomes compare equal
/// even though their evaluation strategies (and therefore their counters)
/// differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Dirty levels actually evaluated across all word-cycles of the
    /// incremental (cone) mode.
    pub levels_evaluated: u64,
    /// Clean levels skipped because no operand word had changed against the
    /// golden frame. Always 0 when the engine runs with event-driven
    /// scheduling disabled (`TMR_SIM=compiled-full`).
    pub levels_skipped: u64,
    /// Instructions actually evaluated across all word-cycle-passes.
    pub ops_evaluated: u64,
    /// Instructions skipped by the per-instruction divergence check: every
    /// operand lane was golden-equal (and no overlay targeted the
    /// instruction), so its output is provably the golden value. Always 0
    /// with event-driven scheduling disabled.
    pub ops_skipped: u64,
    /// Word batches evaluated at the narrow 1×u64 (64-lane) width.
    pub words_narrow: u64,
    /// Word batches evaluated at the wide 4×u64 (256-lane) width.
    pub words_wide: u64,
    /// Word batches that took the full-netlist multi-pass mode (bridged
    /// lanes), at either width.
    pub words_full_eval: u64,
    /// The largest number of experiment lanes any single word batch carried.
    pub max_lanes_per_word: u64,
    /// Experiment lanes simulated in packed words.
    pub lanes_simulated: u64,
    /// Lanes whose outcome was decided before the final stimulus cycle
    /// (voted outputs diverged early, or a pure state fault re-converged
    /// with golden).
    pub lanes_retired_early: u64,
    /// Simulable faults that shared a fan-out-cone fingerprint with the
    /// previous fault of their batching order — the cone-dedup hit count.
    pub cone_dedup_hits: u64,
    /// Simulable faults grouped by the cone batcher (the dedup denominator).
    pub cone_grouped: u64,
}

impl SimStats {
    /// Merges another counter block into this one (sums, except the lane
    /// maximum). Order-independent, so shard merge order never shows.
    pub fn merge(&mut self, other: &SimStats) {
        self.levels_evaluated += other.levels_evaluated;
        self.levels_skipped += other.levels_skipped;
        self.ops_evaluated += other.ops_evaluated;
        self.ops_skipped += other.ops_skipped;
        self.words_narrow += other.words_narrow;
        self.words_wide += other.words_wide;
        self.words_full_eval += other.words_full_eval;
        self.max_lanes_per_word = self.max_lanes_per_word.max(other.max_lanes_per_word);
        self.lanes_simulated += other.lanes_simulated;
        self.lanes_retired_early += other.lanes_retired_early;
        self.cone_dedup_hits += other.cone_dedup_hits;
        self.cone_grouped += other.cone_grouped;
    }

    /// Fraction of incremental-mode levels that were skipped (0 when the
    /// incremental mode never ran).
    pub fn level_skip_rate(&self) -> f64 {
        let total = self.levels_evaluated + self.levels_skipped;
        if total == 0 {
            return 0.0;
        }
        self.levels_skipped as f64 / total as f64
    }

    /// Fraction of visited instructions that were skipped by the
    /// per-instruction divergence check (0 when nothing was visited).
    pub fn op_skip_rate(&self) -> f64 {
        let total = self.ops_evaluated + self.ops_skipped;
        if total == 0 {
            return 0.0;
        }
        self.ops_skipped as f64 / total as f64
    }

    /// Fraction of cone-batched faults that shared a cone fingerprint with
    /// their predecessor (0 when nothing was batched).
    pub fn cone_dedup_rate(&self) -> f64 {
        if self.cone_grouped == 0 {
            return 0.0;
        }
        self.cone_dedup_hits as f64 / self.cone_grouped as f64
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "levels {} eval / {} skip ({:.0} % skipped); ops {} eval / {} \
             skip ({:.0} % skipped); words {}x64 + {}x256 \
             ({} full-eval, max {} lanes); {} lanes ({} retired early); \
             cone dedup {}/{} ({:.0} %)",
            self.levels_evaluated,
            self.levels_skipped,
            100.0 * self.level_skip_rate(),
            self.ops_evaluated,
            self.ops_skipped,
            100.0 * self.op_skip_rate(),
            self.words_narrow,
            self.words_wide,
            self.words_full_eval,
            self.max_lanes_per_word,
            self.lanes_simulated,
            self.lanes_retired_early,
            self.cone_dedup_hits,
            self.cone_grouped,
            100.0 * self.cone_dedup_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_lanes() {
        let mut a = SimStats {
            levels_evaluated: 10,
            levels_skipped: 30,
            ops_evaluated: 100,
            ops_skipped: 900,
            words_narrow: 1,
            words_wide: 2,
            words_full_eval: 1,
            max_lanes_per_word: 64,
            lanes_simulated: 100,
            lanes_retired_early: 40,
            cone_dedup_hits: 5,
            cone_grouped: 20,
        };
        let b = SimStats {
            levels_evaluated: 1,
            levels_skipped: 1,
            ops_evaluated: 1,
            ops_skipped: 1,
            words_narrow: 0,
            words_wide: 1,
            words_full_eval: 0,
            max_lanes_per_word: 256,
            lanes_simulated: 200,
            lanes_retired_early: 1,
            cone_dedup_hits: 1,
            cone_grouped: 2,
        };
        a.merge(&b);
        assert_eq!(a.levels_evaluated, 11);
        assert_eq!(a.levels_skipped, 31);
        assert_eq!(a.ops_evaluated, 101);
        assert_eq!(a.ops_skipped, 901);
        assert!(a.op_skip_rate() > 0.8);
        assert_eq!(a.words_wide, 3);
        assert_eq!(a.max_lanes_per_word, 256);
        assert_eq!(a.lanes_simulated, 300);
        assert_eq!(a.cone_dedup_hits, 6);
        assert!(a.level_skip_rate() > 0.7);
        assert!(a.cone_dedup_rate() > 0.25);
        let rendered = a.to_string();
        assert!(rendered.contains("levels 11 eval"));
        assert!(rendered.contains("max 256 lanes"));
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let stats = SimStats::default();
        assert_eq!(stats.level_skip_rate(), 0.0);
        assert_eq!(stats.cone_dedup_rate(), 0.0);
    }
}
