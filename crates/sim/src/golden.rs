//! The reusable golden reference of a fault-injection campaign.
//!
//! Every fault experiment replays the same stimulus and compares against the
//! same fault-free trace through the same pad-voting output grouping. Those
//! three values are a pure function of `(netlist, cycles, seed)` — this
//! module bundles them into one immutable, `Arc`-shareable artifact so that
//! campaign engines, streaming sessions and the facade's artifact cache can
//! compute them once and reuse them across campaigns over the same design.

use crate::{FaultOverlay, OutputGroups, SimError, SimTrace, Simulator, Stimulus};
use tmr_netlist::Netlist;

/// A precomputed golden (fault-free) reference run: the stimulus, the trace
/// it produces on the unfaulted design, and the output grouping used to
/// compare faulty traces against it.
///
/// The type is immutable after construction and therefore `Sync`; campaign
/// engines accept it behind an `Arc` to skip recomputing the golden
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    stimulus: Stimulus,
    trace: SimTrace,
    groups: OutputGroups,
    /// The seed [`GoldenRun::compute`] derived the stimulus from, recorded
    /// so campaign engines can verify an injected golden run matches their
    /// options (`None` for explicit [`GoldenRun::from_parts`] stimuli).
    stimulus_seed: Option<u64>,
}

impl GoldenRun {
    /// Simulates the fault-free design for `cycles` cycles of the
    /// deterministic pseudo-random stimulus derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be levelized
    /// (combinational loop).
    pub fn compute(netlist: &Netlist, cycles: usize, seed: u64) -> Result<Self, SimError> {
        let simulator = Simulator::new(netlist)?;
        let stimulus = Stimulus::random(netlist, cycles, seed);
        let trace = simulator.run_stimulus(&stimulus, &FaultOverlay::none());
        let groups = OutputGroups::new(netlist);
        Ok(Self {
            stimulus,
            trace,
            groups,
            stimulus_seed: Some(seed),
        })
    }

    /// Bundles an explicit stimulus/trace/grouping triple (the trace must be
    /// the fault-free response of the design to the stimulus).
    pub fn from_parts(stimulus: Stimulus, trace: SimTrace, groups: OutputGroups) -> Self {
        Self {
            stimulus,
            trace,
            groups,
            stimulus_seed: None,
        }
    }

    /// Like [`GoldenRun::from_parts`], but preserving the recorded stimulus
    /// seed — the codec in `tmr-store` uses this so a decoded golden run is
    /// indistinguishable from the [`GoldenRun::compute`] call that produced
    /// it (campaign engines verify an injected golden run's seed against
    /// their options when one is recorded).
    pub fn from_parts_with_seed(
        stimulus: Stimulus,
        trace: SimTrace,
        groups: OutputGroups,
        stimulus_seed: Option<u64>,
    ) -> Self {
        Self {
            stimulus,
            trace,
            groups,
            stimulus_seed,
        }
    }

    /// The replayable input stimulus.
    pub fn stimulus(&self) -> &Stimulus {
        &self.stimulus
    }

    /// The fault-free output trace.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// The pad-voting output grouping.
    pub fn groups(&self) -> &OutputGroups {
        &self.groups
    }

    /// Number of stimulus cycles.
    pub fn cycles(&self) -> usize {
        self.stimulus.cycles()
    }

    /// The seed the stimulus was derived from, when this run came from
    /// [`GoldenRun::compute`].
    pub fn stimulus_seed(&self) -> Option<u64> {
        self.stimulus_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::CellKind;

    #[test]
    fn golden_run_is_deterministic_and_replayable() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Lut { k: 2, init: 0b1000 }, vec![a, b], y)
            .unwrap();
        nl.add_output("y", y);

        let golden = GoldenRun::compute(&nl, 8, 3).unwrap();
        assert_eq!(golden.cycles(), 8);
        assert_eq!(golden, GoldenRun::compute(&nl, 8, 3).unwrap());
        // Replaying the stimulus reproduces the stored trace exactly.
        let simulator = Simulator::new(&nl).unwrap();
        let replay = simulator.run_stimulus(golden.stimulus(), &FaultOverlay::none());
        assert_eq!(&replay, golden.trace());
    }
}
