//! Error type of the TMR transformation.

use std::error::Error;
use std::fmt;
use tmr_synth::DesignError;

/// Errors produced while applying the TMR transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmrError {
    /// Rebuilding the triplicated design failed (width or arity inconsistency
    /// in the input design).
    Design(DesignError),
    /// The input design already contains voters, which would be triplicated
    /// blindly; apply TMR to the unprotected design instead.
    AlreadyProtected {
        /// Name of the offending voter node.
        node: String,
    },
}

impl fmt::Display for TmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmrError::Design(err) => write!(f, "design reconstruction failed: {err}"),
            TmrError::AlreadyProtected { node } => write!(
                f,
                "design already contains voter `{node}`; TMR must be applied to the unprotected design"
            ),
        }
    }
}

impl Error for TmrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TmrError::Design(err) => Some(err),
            TmrError::AlreadyProtected { .. } => None,
        }
    }
}

impl From<DesignError> for TmrError {
    fn from(err: DesignError) -> Self {
        TmrError::Design(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let err = TmrError::AlreadyProtected { node: "v1".into() };
        assert!(err.to_string().contains("v1"));
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TmrError>();
    }
}
