//! The TMR transformation with configurable voter placement.

use crate::TmrError;
use std::collections::HashMap;
use tmr_netlist::Domain;
use tmr_synth::{Design, SignalId, WordNode, WordNodeId, WordOp};

/// Where majority voters are inserted in the triplicated combinational logic.
///
/// This is the design variable the paper sweeps: the three FIR variants of
/// Fig. 4 correspond to the three placements below (registers are voted in
/// all of them except `tmr_p3_nv`, which is controlled separately by
/// [`TmrConfig::vote_registers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoterPlacement {
    /// Maximum logic partition: a voter after **every** combinational
    /// component (every adder, subtractor and multiplier) — `TMR_p1`.
    EveryComponent,
    /// Medium logic partition: a voter after every adder/subtractor, so each
    /// partition groups one multiplier and one adder — `TMR_p2`.
    AfterAdders,
    /// Minimum logic partition: no voters inside the combinational logic;
    /// only register voters (if enabled) and the final output voter —
    /// `TMR_p3` / `TMR_p3_nv`.
    OutputsOnly,
}

impl VoterPlacement {
    /// Returns `true` if the output of `node` must be voted under this
    /// placement.
    pub fn votes_node(self, node: &WordNode) -> bool {
        match self {
            VoterPlacement::EveryComponent => {
                matches!(node.op, WordOp::Add | WordOp::Sub | WordOp::MulConst { .. })
            }
            VoterPlacement::AfterAdders => matches!(node.op, WordOp::Add | WordOp::Sub),
            VoterPlacement::OutputsOnly => false,
        }
    }
}

/// Configuration of the TMR transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmrConfig {
    /// Voter placement inside the combinational logic.
    pub placement: VoterPlacement,
    /// Whether registers become "TMR registers with voters and refresh"
    /// (Fig. 2 of the paper): a voter per domain on the register outputs, so
    /// an upset captured by one register copy is corrected on the next cycle.
    pub vote_registers: bool,
    /// Where the final output majority voter lives.
    ///
    /// * `true` (the paper's scheme): the three domain copies of each output
    ///   leave the fabric on separate triplicated pins (`y_tr0`, `y_tr1`,
    ///   `y_tr2`) and are voted "inside the output logic block" — modelled as
    ///   voting at the pads, outside the reach of configuration upsets.
    /// * `false`: a single majority-voter LUT is instantiated in the fabric,
    ///   which makes the output voter itself vulnerable to upsets (useful for
    ///   ablation studies).
    pub output_voter_in_iob: bool,
    /// Short label used to derive the transformed design's name
    /// (e.g. `"p2"` produces `fir11_tmr_p2`).
    pub label: String,
}

impl TmrConfig {
    /// `TMR_p1`: maximum logic partition — a voter after every combinational
    /// component, plus voted registers.
    pub fn paper_p1() -> Self {
        Self {
            placement: VoterPlacement::EveryComponent,
            vote_registers: true,
            output_voter_in_iob: true,
            label: "p1".to_string(),
        }
    }

    /// `TMR_p2`: medium logic partition — a voter after every adder (each
    /// partition contains one multiplier and one adder), plus voted registers.
    pub fn paper_p2() -> Self {
        Self {
            placement: VoterPlacement::AfterAdders,
            vote_registers: true,
            output_voter_in_iob: true,
            label: "p2".to_string(),
        }
    }

    /// `TMR_p3`: minimum logic partition — voters only at the outermost
    /// outputs, plus voted registers.
    pub fn paper_p3() -> Self {
        Self {
            placement: VoterPlacement::OutputsOnly,
            vote_registers: true,
            output_voter_in_iob: true,
            label: "p3".to_string(),
        }
    }

    /// `TMR_p3_nv`: minimum logic partition with *unvoted* (merely
    /// triplicated) registers; the final output voters are the only barrier.
    pub fn paper_p3_nv() -> Self {
        Self {
            placement: VoterPlacement::OutputsOnly,
            vote_registers: false,
            output_voter_in_iob: true,
            label: "p3_nv".to_string(),
        }
    }

    /// The four paper presets in evaluation order.
    pub fn paper_presets() -> Vec<TmrConfig> {
        vec![
            Self::paper_p1(),
            Self::paper_p2(),
            Self::paper_p3(),
            Self::paper_p3_nv(),
        ]
    }
}

/// Applies the TMR transformation to `design` according to `config`.
///
/// See the crate-level documentation for the full description of the produced
/// structure. The transformation is purely structural: the transformed design
/// computes exactly the same function as the original when all three input
/// copies receive the same values (checked by the crate's tests and by the
/// property tests in `tests/`).
///
/// # Errors
///
/// Returns [`TmrError::AlreadyProtected`] if the design already contains
/// voters, or [`TmrError::Design`] if reconstruction fails (inconsistent
/// widths in the input design).
pub fn apply_tmr(design: &Design, config: &TmrConfig) -> Result<Design, TmrError> {
    for (_, node) in design.nodes() {
        if matches!(node.op, WordOp::Voter) {
            return Err(TmrError::AlreadyProtected {
                node: node.name.clone(),
            });
        }
    }

    let mut out = Design::new(format!("{}_tmr_{}", design.name(), config.label));
    // Current signal to use, per original signal and per domain (index 0..3).
    let mut map: HashMap<SignalId, [SignalId; 3]> = HashMap::new();
    // Register copies to patch after everything else is built:
    // (original input signal, [copy node ids; 3]).
    let mut register_patches: Vec<(SignalId, [WordNodeId; 3])> = Vec::new();
    // Per-width placeholder signal used as the temporary register input.
    let mut placeholders: HashMap<u8, SignalId> = HashMap::new();

    // ------------------------------------------------------------------
    // Phase 1: registers (their outputs are sources for the combinational
    // logic, and their inputs may be forward references — feedback loops).
    // ------------------------------------------------------------------
    for (_, node) in design.nodes() {
        let init = match node.op {
            WordOp::Register { init } => init,
            _ => continue,
        };
        let out_sig = node.output.expect("registers produce a signal");
        let width = design.signal(out_sig).width;
        let placeholder = *placeholders
            .entry(width)
            .or_insert_with(|| out.add_const(format!("tmr_placeholder_w{width}"), 0, width));

        let mut copies = [WordNodeId::from_index(0); 3];
        let mut raw = [SignalId::from_index(0); 3];
        for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
            let (node_id, sig) = out.add_node_in_domain(
                format!("{}_tr{d}", node.name),
                WordOp::Register { init },
                vec![placeholder],
                None,
                *domain,
            )?;
            copies[d] = node_id;
            raw[d] = sig.expect("registers produce a signal");
        }
        register_patches.push((node.inputs[0], copies));

        let mapped = if config.vote_registers {
            insert_voters(&mut out, &node.name, raw)?
        } else {
            raw
        };
        map.insert(out_sig, mapped);
    }

    // ------------------------------------------------------------------
    // Phase 2: everything else, in topological order.
    // ------------------------------------------------------------------
    for node_id in design.topological_order() {
        let node = design.node(node_id);
        match &node.op {
            WordOp::Register { .. } => {
                unreachable!("registers are excluded from the topological order")
            }
            WordOp::Input => {
                let out_sig = node.output.expect("inputs produce a signal");
                let width = design.signal(out_sig).width;
                let mut copies = [SignalId::from_index(0); 3];
                for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
                    copies[d] = out.add_input_in_domain(
                        format!("{}_tr{d}", design.signal(out_sig).name),
                        width,
                        *domain,
                    );
                }
                map.insert(out_sig, copies);
            }
            WordOp::Const { value } => {
                let out_sig = node.output.expect("constants produce a signal");
                let width = design.signal(out_sig).width;
                let mut copies = [SignalId::from_index(0); 3];
                for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
                    let (_, sig) = out.add_node_in_domain(
                        format!("{}_tr{d}", node.name),
                        WordOp::Const { value: *value },
                        vec![],
                        Some(width),
                        *domain,
                    )?;
                    copies[d] = sig.expect("constants produce a signal");
                }
                map.insert(out_sig, copies);
            }
            WordOp::Output { port } => {
                let sources = mapped_inputs(&map, node)?;
                if config.output_voter_in_iob {
                    // The paper's scheme: the three domain copies leave the
                    // fabric on triplicated pins and are voted in the output
                    // logic block (modelled as pad-level voting, immune to
                    // configuration upsets).
                    for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
                        out.add_output_in_domain(format!("{port}_tr{d}"), sources[0][d], *domain);
                    }
                } else {
                    // Ablation variant: a single in-fabric voter LUT reduces
                    // the three domains back to one external pin.
                    let (_, voted) = out.add_node_in_domain(
                        format!("{port}_vout"),
                        WordOp::Voter,
                        vec![sources[0][0], sources[0][1], sources[0][2]],
                        None,
                        Domain::Voter,
                    )?;
                    out.add_output_in_domain(
                        port.clone(),
                        voted.expect("voters produce a signal"),
                        Domain::Voter,
                    );
                }
            }
            WordOp::Add | WordOp::Sub | WordOp::MulConst { .. } => {
                let out_sig = node.output.expect("arithmetic nodes produce a signal");
                let width = design.signal(out_sig).width;
                let sources = mapped_inputs(&map, node)?;
                let mut raw = [SignalId::from_index(0); 3];
                for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
                    let inputs: Vec<SignalId> =
                        sources.iter().map(|per_domain| per_domain[d]).collect();
                    let (_, sig) = out.add_node_in_domain(
                        format!("{}_tr{d}", node.name),
                        node.op.clone(),
                        inputs,
                        Some(width),
                        *domain,
                    )?;
                    raw[d] = sig.expect("arithmetic nodes produce a signal");
                }
                let mapped = if config.placement.votes_node(node) {
                    insert_voters(&mut out, &node.name, raw)?
                } else {
                    raw
                };
                map.insert(out_sig, mapped);
            }
            WordOp::Voter => unreachable!("checked at entry"),
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: close register feedback.
    // ------------------------------------------------------------------
    for (orig_input, copies) in register_patches {
        let sources =
            map.get(&orig_input)
                .ok_or(TmrError::Design(tmr_synth::DesignError::UnknownSignal(
                    orig_input,
                )))?;
        for (d, &copy) in copies.iter().enumerate() {
            out.replace_input(copy, 0, sources[d])?;
        }
    }

    Ok(out)
}

/// Inserts one voter per redundant domain on the three raw copies of a signal
/// and returns the voted signals (the paper triplicates voters so that an
/// upset in a voter LUT is itself masked).
fn insert_voters(
    out: &mut Design,
    base_name: &str,
    raw: [SignalId; 3],
) -> Result<[SignalId; 3], TmrError> {
    let mut voted = [SignalId::from_index(0); 3];
    for (d, domain) in Domain::REDUNDANT.iter().enumerate() {
        let (_, sig) = out.add_node_in_domain(
            format!("{base_name}_v{d}"),
            WordOp::Voter,
            vec![raw[0], raw[1], raw[2]],
            None,
            Domain::Voter,
        )?;
        let sig = sig.expect("voters produce a signal");
        // The voted signal feeds domain-`d` logic, so it carries that domain
        // tag for the cross-domain exposure analysis.
        out.set_signal_domain(sig, *domain);
        voted[d] = sig;
    }
    Ok(voted)
}

/// Looks up the triplicated copies of every input of `node`.
fn mapped_inputs(
    map: &HashMap<SignalId, [SignalId; 3]>,
    node: &WordNode,
) -> Result<Vec<[SignalId; 3]>, TmrError> {
    node.inputs
        .iter()
        .map(|sig| {
            map.get(sig)
                .copied()
                .ok_or(TmrError::Design(tmr_synth::DesignError::UnknownSignal(
                    *sig,
                )))
        })
        .collect()
}

/// Builds the five designs evaluated in the paper from an unprotected design:
/// the standard (unprotected) version plus the four TMR variants.
///
/// # Errors
///
/// Propagates any [`TmrError`] from the individual transformations.
pub fn paper_variants(design: &Design) -> Result<Vec<(String, Design)>, TmrError> {
    let mut variants = vec![("standard".to_string(), design.clone())];
    for config in TmrConfig::paper_presets() {
        let name = format!("tmr_{}", config.label);
        variants.push((name, apply_tmr(design, &config)?));
    }
    Ok(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    /// y = reg(a*3 + b) — one multiplier, one adder, one register.
    fn small_design() -> Design {
        let mut d = Design::new("small");
        let a = d.add_input("a", 6);
        let b = d.add_input("b", 6);
        let m = d.add_mul_const("m", a, 3, 9);
        let s = d.add_add("s", m, b, 9);
        let q = d.add_register("q", s);
        d.add_output("y", q);
        d
    }

    fn tmr_stimuli(values: &[(i64, i64)]) -> Vec<Map<String, i64>> {
        values
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                for d in 0..3 {
                    m.insert(format!("a_tr{d}"), a);
                    m.insert(format!("b_tr{d}"), b);
                }
                m
            })
            .collect()
    }

    fn plain_stimuli(values: &[(i64, i64)]) -> Vec<Map<String, i64>> {
        values
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                m.insert("a".to_string(), a);
                m.insert("b".to_string(), b);
                m
            })
            .collect()
    }

    /// Builds one design containing every votable node kind and returns the
    /// node matching `name`.
    fn node_by_name(design: &Design, name: &str) -> WordNode {
        design
            .nodes()
            .find(|(_, node)| node.name == name)
            .map(|(_, node)| node.clone())
            .unwrap_or_else(|| panic!("node `{name}` not found"))
    }

    #[test]
    fn votes_node_follows_the_partition_definitions() {
        let mut d = Design::new("ops");
        let a = d.add_input("a", 6);
        let b = d.add_input("b", 6);
        let m = d.add_mul_const("m", a, 3, 9);
        let s = d.add_add("s", m, b, 9);
        let t = d.add_sub("t", s, b, 9);
        let q = d.add_register("q", t);
        d.add_output("y", q);

        let mul = node_by_name(&d, "m");
        let add = node_by_name(&d, "s");
        let sub = node_by_name(&d, "t");
        let reg = node_by_name(&d, "q");
        let input = node_by_name(&d, "a");
        let output = node_by_name(&d, "out_y");

        // Maximum partition: every combinational component is voted.
        for node in [&mul, &add, &sub] {
            assert!(
                VoterPlacement::EveryComponent.votes_node(node),
                "{}",
                node.name
            );
        }
        // Medium partition: adders and subtractors only, not multipliers.
        assert!(VoterPlacement::AfterAdders.votes_node(&add));
        assert!(VoterPlacement::AfterAdders.votes_node(&sub));
        assert!(!VoterPlacement::AfterAdders.votes_node(&mul));
        // Minimum partition: no combinational voters at all.
        for node in [&mul, &add, &sub] {
            assert!(
                !VoterPlacement::OutputsOnly.votes_node(node),
                "{}",
                node.name
            );
        }
        // Registers, inputs and outputs are never combinational vote points
        // (registers are controlled by `vote_registers` instead).
        for placement in [
            VoterPlacement::EveryComponent,
            VoterPlacement::AfterAdders,
            VoterPlacement::OutputsOnly,
        ] {
            for node in [&reg, &input, &output] {
                assert!(
                    !placement.votes_node(node),
                    "{placement:?} voting {}",
                    node.name
                );
            }
        }
    }

    #[test]
    fn paper_preset_constructors_match_the_figure4_variants() {
        let p1 = TmrConfig::paper_p1();
        assert_eq!(p1.placement, VoterPlacement::EveryComponent);
        assert!(p1.vote_registers);
        assert!(p1.output_voter_in_iob);
        assert_eq!(p1.label, "p1");

        let p2 = TmrConfig::paper_p2();
        assert_eq!(p2.placement, VoterPlacement::AfterAdders);
        assert!(p2.vote_registers);
        assert!(p2.output_voter_in_iob);
        assert_eq!(p2.label, "p2");

        let p3 = TmrConfig::paper_p3();
        assert_eq!(p3.placement, VoterPlacement::OutputsOnly);
        assert!(p3.vote_registers);
        assert!(p3.output_voter_in_iob);
        assert_eq!(p3.label, "p3");

        // p3_nv is p3 with unvoted (merely triplicated) registers.
        let p3_nv = TmrConfig::paper_p3_nv();
        assert_eq!(p3_nv.placement, VoterPlacement::OutputsOnly);
        assert!(!p3_nv.vote_registers);
        assert!(p3_nv.output_voter_in_iob);
        assert_eq!(p3_nv.label, "p3_nv");

        // The preset list is the paper's evaluation order.
        let labels: Vec<String> = TmrConfig::paper_presets()
            .into_iter()
            .map(|c| c.label)
            .collect();
        assert_eq!(labels, ["p1", "p2", "p3", "p3_nv"]);
    }

    #[test]
    fn triplicates_logic_and_inputs() {
        let original = small_design();
        let tmr = apply_tmr(&original, &TmrConfig::paper_p2()).unwrap();
        let stats = tmr.stats();
        assert_eq!(stats.adders, 3);
        assert_eq!(stats.multipliers, 3);
        assert_eq!(stats.registers, 3);
        assert_eq!(stats.inputs, 6);
        assert_eq!(
            stats.outputs, 3,
            "outputs are triplicated and voted at the pads"
        );
    }

    #[test]
    fn voter_counts_follow_the_partition_ordering() {
        let original = small_design();
        let count = |config: &TmrConfig| apply_tmr(&original, config).unwrap().stats().voters;
        let p1 = count(&TmrConfig::paper_p1());
        let p2 = count(&TmrConfig::paper_p2());
        let p3 = count(&TmrConfig::paper_p3());
        let p3_nv = count(&TmrConfig::paper_p3_nv());
        assert!(
            p1 > p2,
            "max partition has more voters than medium ({p1} vs {p2})"
        );
        assert!(
            p2 > p3,
            "medium partition has more voters than minimum ({p2} vs {p3})"
        );
        assert!(p3 > p3_nv, "voted registers add voters ({p3} vs {p3_nv})");
        // Exact counts for this design: 1 mul + 1 add voted in p1 (2*3), only
        // the adder in p2 (1*3), none in p3; registers add 3 except in p3_nv.
        // Output voting happens at the pads, so it adds no fabric voters.
        assert_eq!(p1, 2 * 3 + 3);
        assert_eq!(p2, 3 + 3);
        assert_eq!(p3, 3);
        assert_eq!(p3_nv, 0);
    }

    /// Checks that every triplicated output copy of `actual` matches the
    /// single output of `expected`, cycle by cycle.
    fn assert_tmr_equivalent(
        expected: &[Map<String, i64>],
        actual: &[Map<String, i64>],
        label: &str,
    ) {
        assert_eq!(expected.len(), actual.len());
        for (cycle, (exp, act)) in expected.iter().zip(actual.iter()).enumerate() {
            for (port, value) in exp {
                for d in 0..3 {
                    assert_eq!(
                        act[&format!("{port}_tr{d}")],
                        *value,
                        "variant {label}, cycle {cycle}, output {port}_tr{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn tmr_design_is_functionally_equivalent() {
        let original = small_design();
        let values = [
            (0i64, 0i64),
            (5, 7),
            (-20, 3),
            (31, -32),
            (-1, -1),
            (12, 13),
        ];
        let expected = original.evaluate(&plain_stimuli(&values));
        for config in TmrConfig::paper_presets() {
            let tmr = apply_tmr(&original, &config).unwrap();
            let actual = tmr.evaluate(&tmr_stimuli(&values));
            assert_tmr_equivalent(&expected, &actual, &config.label);
        }
    }

    #[test]
    fn single_corrupted_domain_is_masked() {
        let original = small_design();
        let tmr = apply_tmr(&original, &TmrConfig::paper_p2()).unwrap();
        let values = [(5i64, 7i64), (9, -2), (0, 0), (-8, 11)];
        let expected = original.evaluate(&plain_stimuli(&values));
        // Corrupt domain tr1's inputs on every cycle.
        let corrupted: Vec<Map<String, i64>> = values
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                for d in 0..3 {
                    let (av, bv) = if d == 1 { (a ^ 0x15, b ^ 0x2a) } else { (a, b) };
                    m.insert(format!("a_tr{d}"), av);
                    m.insert(format!("b_tr{d}"), bv);
                }
                m
            })
            .collect();
        let actual = tmr.evaluate(&corrupted);
        assert_tmr_equivalent(&expected, &actual, "p2-masking");
    }

    #[test]
    fn two_corrupted_domains_defeat_tmr() {
        let original = small_design();
        let tmr = apply_tmr(&original, &TmrConfig::paper_p2()).unwrap();
        let values = [(5i64, 7i64), (9, -2)];
        let expected = original.evaluate(&plain_stimuli(&values));
        let corrupted: Vec<Map<String, i64>> = values
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                for d in 0..3 {
                    let av = if d <= 1 { a ^ 0x1f } else { a };
                    m.insert(format!("a_tr{d}"), av);
                    m.insert(format!("b_tr{d}"), b);
                }
                m
            })
            .collect();
        let actual = tmr.evaluate(&corrupted);
        // At least one output copy (in fact all of them, because the corrupted
        // value wins the internal votes) differs from the reference.
        let diverged = expected.iter().zip(actual.iter()).any(|(exp, act)| {
            exp.iter()
                .any(|(port, value)| act[&format!("{port}_tr0")] != *value)
        });
        assert!(diverged, "two faulty domains cannot be voted out");
    }

    #[test]
    fn feedback_registers_are_preserved() {
        // acc <= acc + x
        let mut d = Design::new("acc");
        let x = d.add_input("x", 8);
        let (reg, acc) = d
            .add_node_in_domain(
                "acc",
                WordOp::Register { init: 0 },
                vec![x],
                None,
                Domain::None,
            )
            .unwrap();
        let acc = acc.unwrap();
        let sum = d.add_add("sum", acc, x, 8);
        d.replace_input(reg, 0, sum).unwrap();
        d.add_output("y", acc);

        let tmr = apply_tmr(&d, &TmrConfig::paper_p2()).unwrap();
        // Equivalence over a few cycles.
        let plain: Vec<Map<String, i64>> = [1i64, 2, 3, 4]
            .iter()
            .map(|&v| {
                let mut m = Map::new();
                m.insert("x".to_string(), v);
                m
            })
            .collect();
        let trip: Vec<Map<String, i64>> = [1i64, 2, 3, 4]
            .iter()
            .map(|&v| {
                let mut m = Map::new();
                for dom in 0..3 {
                    m.insert(format!("x_tr{dom}"), v);
                }
                m
            })
            .collect();
        assert_tmr_equivalent(&d.evaluate(&plain), &tmr.evaluate(&trip), "feedback");
    }

    #[test]
    fn double_protection_is_rejected() {
        let original = small_design();
        let tmr = apply_tmr(&original, &TmrConfig::paper_p3()).unwrap();
        let err = apply_tmr(&tmr, &TmrConfig::paper_p3()).unwrap_err();
        assert!(matches!(err, TmrError::AlreadyProtected { .. }));
    }

    #[test]
    fn paper_variants_produces_all_five() {
        let original = small_design();
        let variants = paper_variants(&original).unwrap();
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["standard", "tmr_p1", "tmr_p2", "tmr_p3", "tmr_p3_nv"]
        );
        assert_eq!(variants[0].1.stats().voters, 0);
    }

    #[test]
    fn voted_signals_carry_consumer_domains() {
        let original = small_design();
        let tmr = apply_tmr(&original, &TmrConfig::paper_p2()).unwrap();
        // Every voter node's output signal is tagged with a redundant domain
        // (except the single final output voter, tagged Voter).
        let mut redundant_voted = 0;
        for (_, node) in tmr.nodes() {
            if matches!(node.op, WordOp::Voter) {
                let sig = node.output.expect("voters produce a signal");
                if tmr.signal(sig).domain.is_redundant() {
                    redundant_voted += 1;
                }
            }
        }
        assert!(redundant_voted > 0);
    }
}
