//! # tmr-core
//!
//! The primary contribution of the DATE 2005 paper *"On the Optimal Design of
//! Triple Modular Redundancy Logic for SRAM-based FPGAs"*: a TMR
//! transformation over word-level designs whose **voter placement is a
//! first-class, configurable decision**, plus the analysis machinery needed to
//! reason about the trade-off the paper studies (number of voters vs.
//! exposure of the routing to domain-crossing upsets).
//!
//! ## The transformation
//!
//! [`apply_tmr`] takes a [`tmr_synth::Design`] and a [`TmrConfig`] and returns
//! a new design in which:
//!
//! * every input is triplicated (`x_tr0`, `x_tr1`, `x_tr2`) — a single input
//!   pin shared by all three domains would be a single point of failure;
//! * every logic node is triplicated into domains `tr0`, `tr1`, `tr2`;
//! * majority voters are inserted after the nodes selected by the
//!   [`VoterPlacement`] strategy (voters are themselves triplicated, one per
//!   domain, so an upset inside a voter LUT is also masked);
//! * registers are implemented as "TMR registers with voters and refresh"
//!   (Fig. 2 of the paper) when [`TmrConfig::vote_registers`] is set; and
//! * each output is reduced back to a single pin by a final output voter.
//!
//! The four TMR variants evaluated in the paper map to the presets
//! [`TmrConfig::paper_p1`] (maximum partition), [`TmrConfig::paper_p2`]
//! (medium partition), [`TmrConfig::paper_p3`] (minimum partition) and
//! [`TmrConfig::paper_p3_nv`] (minimum partition, unvoted registers).
//!
//! ## Example
//!
//! ```
//! use tmr_core::{apply_tmr, TmrConfig};
//! use tmr_synth::Design;
//!
//! let mut design = Design::new("demo");
//! let a = design.add_input("a", 8);
//! let b = design.add_input("b", 8);
//! let sum = design.add_add("sum", a, b, 9);
//! let q = design.add_register("q", sum);
//! design.add_output("y", q);
//!
//! let tmr = apply_tmr(&design, &TmrConfig::paper_p2()).unwrap();
//! let stats = tmr.stats();
//! assert_eq!(stats.adders, 3, "logic is triplicated");
//! assert!(stats.voters > 0, "voters are inserted");
//! assert_eq!(stats.inputs, 6, "inputs are triplicated");
//! // Outputs leave the fabric triplicated and are voted in the output logic
//! // block (at the pads), as the paper describes.
//! assert_eq!(stats.outputs, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod area;
mod error;
pub mod json;
pub mod pipeline;
mod transform;

pub use analysis::{partition_report, redundant_signal_fraction, PartitionInfo, PartitionReport};
pub use area::{estimate_resources, ResourceEstimate};
pub use error::TmrError;
pub use transform::{apply_tmr, paper_variants, TmrConfig, VoterPlacement};
