//! The workspace's one dependency-free JSON module: a document builder
//! ([`Json`]), a recursive-descent parser ([`parse`]) and validator
//! ([`validate`]), and string escaping ([`escape`]).
//!
//! The workspace builds fully offline, so everything that speaks JSON — the
//! trace sinks in `tmr-trace` (which includes this file via `#[path]`, as
//! `tmr-core` sits above it in the dependency order), the criticality and
//! campaign reports in `tmr-analyze`/`tmr-bench`, the artifact-store
//! metadata in `tmr-store` and the campaign-service wire protocol in
//! `tmr-serve` — shares this module instead of pulling in `serde`. Only what
//! those layers need is implemented: objects with insertion-ordered keys,
//! arrays, escaped strings, integers, floats, booleans and null, rendered
//! compactly and parsed back with byte-offset errors.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough precision to round-trip; non-finite
    /// values degrade to `null`, as JSON has no representation for them).
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Self {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Self {
        Json::Str(value.into())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Looks a key up in an object (`None` on other variants or a missing
    /// key; the first occurrence wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload of a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload of a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as an `i64` ([`Json::Int`], or a [`Json::Float`]
    /// that is exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload as an `f64` (accepts both numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements of a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }

    /// The `(key, value)` pairs of a [`Json::Object`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::Int(value as i64)
    }
}

impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::Int(value as i64)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Float(value)
    }
}

impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::Str(value.to_string())
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => escape_into(f, s),
            Json::Array(values) => {
                f.write_str("[")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `text` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Validates that `text` is one complete, well-formed JSON value. Returns
/// the byte offset and a message on the first error.
///
/// This is the cheap structural check (no tree is built) used by tests, the
/// `trace_check` CI gate and the campaign-service smoke run; use [`parse`]
/// when the document's content is needed.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, None)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Parses `text` into a [`Json`] tree. Returns the byte offset and a message
/// on the first error; the whole input must be one JSON value.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let mut out = Json::Null;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, Some(&mut out))?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(out)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

/// One recursive-descent step. With `out = None` this only validates; with
/// `Some` it also builds the tree — one grammar, so the validator and the
/// parser can never drift apart.
fn value(bytes: &[u8], pos: &mut usize, out: Option<&mut Json>) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, out),
        Some(b'[') => array(bytes, pos, out),
        Some(b'"') => {
            let text = string(bytes, pos)?;
            if let Some(out) = out {
                *out = Json::Str(text);
            }
            Ok(())
        }
        Some(b'-' | b'0'..=b'9') => number(bytes, pos, out),
        Some(b't') => literal(bytes, pos, b"true", out, Json::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false", out, Json::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null", out, Json::Null),
        Some(_) => Err(fail(*pos, "unexpected character")),
        None => Err(fail(*pos, "unexpected end of input")),
    }
}

fn literal(
    bytes: &[u8],
    pos: &mut usize,
    expected: &[u8],
    out: Option<&mut Json>,
    parsed: Json,
) -> Result<(), String> {
    if bytes[*pos..].starts_with(expected) {
        *pos += expected.len();
        if let Some(out) = out {
            *out = parsed;
        }
        Ok(())
    } else {
        Err(fail(*pos, "malformed literal"))
    }
}

fn object(bytes: &[u8], pos: &mut usize, out: Option<&mut Json>) -> Result<(), String> {
    *pos += 1; // consume '{'
    let mut pairs = out.map(|out| {
        *out = Json::Object(Vec::new());
        match out {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        }
    });
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected object key"));
        }
        let key = string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        match pairs.as_mut() {
            Some(pairs) => {
                let mut member = Json::Null;
                value(bytes, pos, Some(&mut member))?;
                pairs.push((key, member));
            }
            None => value(bytes, pos, None)?,
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, out: Option<&mut Json>) -> Result<(), String> {
    *pos += 1; // consume '['
    let mut values = out.map(|out| {
        *out = Json::Array(Vec::new());
        match out {
            Json::Array(values) => values,
            _ => unreachable!(),
        }
    });
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        match values.as_mut() {
            Some(values) => {
                let mut element = Json::Null;
                value(bytes, pos, Some(&mut element))?;
                values.push(element);
            }
            None => value(bytes, pos, None)?,
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    *pos += 1; // consume opening quote
    let mut run = *pos; // start of the current escape-free run
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                out.push_str(str_run(bytes, run, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(str_run(bytes, run, *pos)?);
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            let digit = bytes
                                .get(*pos)
                                .and_then(|byte| (*byte as char).to_digit(16))
                                .ok_or_else(|| fail(*pos, "bad \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        // Unpaired surrogates degrade to the replacement
                        // character rather than rejecting the document.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
                *pos += 1;
                run = *pos;
            }
            byte if byte < 0x20 => return Err(fail(*pos, "control character in string")),
            _ => *pos += 1,
        }
    }
    Err(fail(*pos, "unterminated string"))
}

/// The escape-free byte run `[from, to)` as UTF-8 (the input may be any byte
/// slice, so the run is checked).
fn str_run(bytes: &[u8], from: usize, to: usize) -> Result<&str, String> {
    std::str::from_utf8(&bytes[from..to]).map_err(|_| fail(from, "invalid UTF-8 in string"))
}

fn number(bytes: &[u8], pos: &mut usize, out: Option<&mut Json>) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(|byte| byte.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(fail(start, "malformed number"));
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(fail(*pos, "malformed fraction"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(fail(*pos, "malformed exponent"));
        }
    }
    if let Some(out) = out {
        // The run is ASCII digits/sign/dot/exponent, so from_utf8 cannot fail.
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number run");
        *out = match text.parse::<i64>() {
            Ok(i) if integral => Json::Int(i),
            _ => Json::Float(
                text.parse::<f64>()
                    .map_err(|_| fail(start, "number out of range"))?,
            ),
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for text in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true}"#,
            r#"  {"traceEvents":[{"ph":"X","ts":0.5,"dur":1.25}]} "#,
        ] {
            assert_eq!(validate(text), Ok(()), "{text}");
            assert!(parse(text).is_ok(), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "01x", "\"abc", "{}extra"] {
            assert!(validate(text).is_err(), "{text}");
            assert!(parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(validate(&escape("any\ntext\u{7}")), Ok(()));
    }

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("tmr_p2")),
            ("bits", Json::from(42usize)),
            ("fraction", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("rows", Json::array([Json::from(1usize), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"tmr_p2","bits":42,"fraction":0.5,"ok":true,"rows":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(2.25).render(), "2.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::array([]).render(), "[]");
        assert_eq!(Json::object::<String>([]).render(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::object([
            ("design", Json::str("fir\n\"q\"")),
            ("injected", Json::from(4000usize)),
            ("rate", Json::from(0.0403)),
            ("negative", Json::Int(-7)),
            ("stopped", Json::from(false)),
            (
                "batches",
                Json::array([Json::from(1usize), Json::Null, Json::Float(1.5)]),
            ),
            ("nested", Json::object([("empty", Json::array([]))])),
        ]);
        assert_eq!(parse(&doc.render()), Ok(doc));
    }

    #[test]
    fn parse_distinguishes_ints_from_floats() {
        assert_eq!(parse("42"), Ok(Json::Int(42)));
        assert_eq!(parse("-42"), Ok(Json::Int(-42)));
        assert_eq!(parse("42.0"), Ok(Json::Float(42.0)));
        assert_eq!(parse("1e3"), Ok(Json::Float(1000.0)));
        // Beyond i64 range, integers degrade to floats instead of failing.
        assert_eq!(parse("99999999999999999999"), Ok(Json::Float(1e20)));
    }

    #[test]
    fn parse_decodes_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA☺""#),
            Ok(Json::Str("a\"b\\c\ndA\u{263a}".to_string()))
        );
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = parse(r#"{"type":"progress","job":3,"ci":0.01,"done":false,"rows":[1,2]}"#)
            .expect("well-formed");
        assert_eq!(doc.get("type").and_then(Json::as_str), Some("progress"));
        assert_eq!(doc.get("job").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("ci").and_then(Json::as_f64), Some(0.01));
        assert_eq!(doc.get("done").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("rows").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("type"), None);
    }
}
