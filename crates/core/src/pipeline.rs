//! The staged-pipeline backing layer: stable content fingerprints and a
//! type-erased, thread-safe [`ArtifactCache`].
//!
//! The facade's `FlowBuilder` models the implementation flow as a chain of
//! typed stage artifacts (synthesized → placed → routed → analyzed), each a
//! pure function of its inputs. This module provides the two pieces that
//! chain needs to be *lazy and memoizable*:
//!
//! * [`fingerprint`] / [`Fingerprint`] — a deterministic 64-bit content hash
//!   built from the `Debug` rendering of the inputs (all flow inputs derive
//!   `Debug` and contain no addresses or iteration-order-dependent state, so
//!   the rendering is a stable serialization of the value);
//! * [`ArtifactCache`] — a `Mutex`-guarded map from `(stage, fingerprint)`
//!   keys to `Arc<dyn Any>` artifacts, shared across flows and sweeps so a
//!   stage invariant across configurations is computed once.
//!
//! Because every stage is deterministic, a downstream key can be derived from
//! the *upstream input* fingerprint instead of hashing the (much larger)
//! upstream output: the routed artifact of `(design, device, seed)` is keyed
//! by those inputs, not by the netlist it was computed from.
//!
//! The cache deliberately lives in `tmr-core` rather than in the facade: it
//! has no dependency beyond `std`, so any layer (benches, future services)
//! can host one without pulling the whole workspace in.

use std::any::Any;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A streaming FNV-1a 64-bit hasher over the `Debug` rendering of values.
///
/// The rendering is fed into the hash incrementally through [`fmt::Write`] —
/// no intermediate `String` is allocated, which matters when fingerprinting
/// large netlist-bearing inputs.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    /// Feeds the `Debug` rendering of `value`, followed by a separator so
    /// adjacent fields cannot alias (`("ab", "c")` vs `("a", "bc")`).
    pub fn write_debug(&mut self, value: &dyn fmt::Debug) -> &mut Self {
        struct HashSink<'a>(&'a mut Fingerprint);
        impl fmt::Write for HashSink<'_> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.write_bytes(s.as_bytes());
                Ok(())
            }
        }
        write!(HashSink(self), "{value:?}").expect("hashing never fails");
        self.write_bytes(&[0x1f]);
        self
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints a sequence of `Debug`-renderable parts in order.
///
/// ```
/// use tmr_core::pipeline::fingerprint;
/// let a = fingerprint(&[&1u64 as &dyn std::fmt::Debug, &"x"]);
/// let b = fingerprint(&[&1u64 as &dyn std::fmt::Debug, &"x"]);
/// let c = fingerprint(&[&2u64 as &dyn std::fmt::Debug, &"x"]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn fingerprint(parts: &[&dyn fmt::Debug]) -> u64 {
    let mut hash = Fingerprint::new();
    for part in parts {
        hash.write_debug(*part);
    }
    hash.finish()
}

/// A cache key: the stage name plus the fingerprint of everything the stage's
/// output depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stage label (`"synth"`, `"routed"`, `"golden"`, …).
    pub stage: &'static str,
    /// Fingerprint of the stage inputs.
    pub fingerprint: u64,
}

impl CacheKey {
    /// Builds a key from a stage label and input fingerprint.
    pub fn new(stage: &'static str, fingerprint: u64) -> Self {
        Self { stage, fingerprint }
    }
}

/// A point-in-time snapshot of cache effectiveness, suitable for logging next
/// to sweep results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
    /// Artifacts currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache was never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0} % hit rate, {} artifacts)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// A thread-safe, type-erased artifact store memoizing pipeline stages.
///
/// Artifacts are stored as `Arc<dyn Any + Send + Sync>` under a
/// [`CacheKey`]; [`ArtifactCache::get_or_try_insert`] downcasts on the way
/// out, so each stage gets its concrete type back. The cache is shared by
/// cloning an `Arc<ArtifactCache>` into every flow of a sweep.
///
/// Failures are **not** cached: a stage that returns `Err` leaves no entry
/// behind, so a retry (e.g. on a bigger device) recomputes it.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<CacheKey, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Per-stage `(hits, misses)` counters, keyed by the stage label.
    stage_counters: Mutex<HashMap<&'static str, (u64, u64)>>,
}

impl ArtifactCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache behind an `Arc`, ready to share across flows.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Returns the cached artifact for `key`, or runs `compute`, stores its
    /// result and returns it. Errors are propagated and nothing is stored.
    ///
    /// # Panics
    ///
    /// Panics if an artifact of a *different type* was stored under the same
    /// key — stage labels must be unique per artifact type.
    pub fn get_or_try_insert<T, E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
    {
        if let Some(found) = self.lookup::<T>(key) {
            if tmr_trace::enabled() {
                tmr_trace::event("cache.hit")
                    .attr("stage", key.stage)
                    .attr("fingerprint", format!("{:016x}", key.fingerprint));
                tmr_trace::counter_add("cache.hits", 1);
            }
            return Ok(found);
        }
        // Every cache miss wraps its compute in a `stage.<label>` span — this
        // one instrumentation point gives the whole pipeline (synth, place,
        // route, analyze, compiled, campaign, …) its stage timings.
        let mut stage_span = if tmr_trace::enabled() {
            let mut span = tmr_trace::span(format!("stage.{}", key.stage));
            span.attr("fingerprint", format!("{:016x}", key.fingerprint));
            Some(span)
        } else {
            None
        };
        // The lock is NOT held while computing: stages are slow (synthesis,
        // routing) and other flows must be able to hit the cache meanwhile.
        // Two threads may race to compute the same artifact; the first store
        // wins and the loser's work is discarded — wasteful but correct,
        // since stages are pure functions of the key.
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bump_stage(key.stage, false);
        if let Some(span) = &mut stage_span {
            span.attr("cache", "miss");
            tmr_trace::counter_add("cache.misses", 1);
        }
        let mut map = self.map.lock().expect("artifact cache poisoned");
        let entry = map
            .entry(key)
            .or_insert_with(|| computed.clone() as Arc<dyn Any + Send + Sync>);
        Ok(entry
            .clone()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact type mismatch for stage `{}`", key.stage)))
    }

    /// Infallible variant of [`ArtifactCache::get_or_try_insert`].
    pub fn get_or_insert<T>(&self, key: CacheKey, compute: impl FnOnce() -> T) -> Arc<T>
    where
        T: Send + Sync + 'static,
    {
        let result: Result<Arc<T>, std::convert::Infallible> =
            self.get_or_try_insert(key, || Ok(compute()));
        match result {
            Ok(artifact) => artifact,
        }
    }

    fn lookup<T: Send + Sync + 'static>(&self, key: CacheKey) -> Option<Arc<T>> {
        let map = self.map.lock().expect("artifact cache poisoned");
        let entry = map.get(&key)?.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.bump_stage(key.stage, true);
        Some(
            entry
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact type mismatch for stage `{}`", key.stage)),
        )
    }

    /// Bumps the per-stage hit/miss counter.
    fn bump_stage(&self, stage: &'static str, hit: bool) {
        let mut counters = self.stage_counters.lock().expect("artifact cache poisoned");
        let entry = counters.entry(stage).or_insert((0, 0));
        if hit {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    /// Per-stage effectiveness counters, sorted by stage label. `entries`
    /// counts the artifacts currently stored under each stage, so sweep
    /// reports can show exactly which pipeline stages (synthesis, the
    /// compiled simulator, campaigns, ...) were served from the cache.
    pub fn stage_stats(&self) -> Vec<(&'static str, CacheStats)> {
        let counters = self
            .stage_counters
            .lock()
            .expect("artifact cache poisoned")
            .clone();
        let map = self.map.lock().expect("artifact cache poisoned");
        let mut stages: Vec<(&'static str, CacheStats)> = counters
            .into_iter()
            .map(|(stage, (hits, misses))| {
                let entries = map.keys().filter(|key| key.stage == stage).count();
                (
                    stage,
                    CacheStats {
                        hits,
                        misses,
                        entries,
                    },
                )
            })
            .collect();
        stages.sort_unstable_by_key(|&(stage, _)| stage);
        stages
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("artifact cache poisoned").len(),
        }
    }

    /// Drops every stored artifact (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("artifact cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_separate_fields() {
        assert_eq!(fingerprint(&[&42u64]), fingerprint(&[&42u64]));
        assert_ne!(fingerprint(&[&42u64]), fingerprint(&[&43u64]));
        // Field boundaries must not alias.
        assert_ne!(
            fingerprint(&[&"ab" as &dyn fmt::Debug, &"c"]),
            fingerprint(&[&"a" as &dyn fmt::Debug, &"bc"])
        );
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let cache = ArtifactCache::new();
        let key = CacheKey::new("stage", 7);
        let mut computed = 0;
        let a = cache.get_or_insert(key, || {
            computed += 1;
            String::from("artifact")
        });
        let b = cache.get_or_insert(key, || {
            computed += 1;
            String::from("other")
        });
        assert_eq!(computed, 1);
        assert_eq!(*a, "artifact");
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.to_string().contains("1 hits"));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let key = CacheKey::new("fallible", 1);
        let failed: Result<Arc<u32>, &str> = cache.get_or_try_insert(key, || Err("boom"));
        assert_eq!(failed.unwrap_err(), "boom");
        let ok = cache.get_or_try_insert::<u32, &str>(key, || Ok(9)).unwrap();
        assert_eq!(*ok, 9);
    }

    #[test]
    fn cache_instrumentation_records_stage_spans_and_hit_events() {
        tmr_trace::configure(tmr_trace::TraceConfig::memory());
        let cache = ArtifactCache::new();
        let key = CacheKey::new("demo", 9);
        let a = cache.get_or_insert(key, || 1u32);
        let b = cache.get_or_insert(key, || 2u32);
        assert_eq!((*a, *b), (1, 1));
        let tree = tmr_trace::drain_tree();
        // Other tests may trace concurrently into the process-global
        // collector; assert only on this test's unique stage label.
        assert_eq!(tree.count("stage.demo"), 1, "one miss span");
        fn demo_hits(node: &tmr_trace::TraceNode) -> usize {
            let own = node.name == "cache.hit"
                && node.attr("stage").map(|v| v.to_string()) == Some("demo".to_string());
            usize::from(own) + node.children.iter().map(demo_hits).sum::<usize>()
        }
        assert_eq!(tree.roots.iter().map(demo_hits).sum::<usize>(), 1);
        tmr_trace::configure(tmr_trace::TraceConfig::off());
    }

    #[test]
    fn distinct_stages_do_not_collide() {
        let cache = ArtifactCache::new();
        let a = cache.get_or_insert(CacheKey::new("a", 1), || 1u32);
        let b = cache.get_or_insert(CacheKey::new("b", 1), || 2u32);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().entries, 2);
    }
}
