//! Area and performance estimation of mapped netlists (Table 2 columns).
//!
//! Estimates are computed from the technology-mapped netlist (LUT4 + DFF +
//! IOB cells) using the slice organisation of the `tmr-arch` device model
//! (two LUTs and two flip-flops per slice) and a unit-delay timing model.
//! Absolute numbers differ from the Xilinx ISE figures of the paper — our
//! fabric has no carry chains — but the relative ordering between TMR
//! variants is preserved, which is what Table 2 is used for.

use tmr_netlist::Netlist;

/// Per-LUT delay (logic + local routing) of the timing model, in nanoseconds.
const LUT_DELAY_NS: f64 = 1.1;
/// Fixed clock overhead (clock-to-out + setup + global routing), in nanoseconds.
const CLOCK_OVERHEAD_NS: f64 = 2.5;

/// Estimated FPGA resources and performance of a mapped netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEstimate {
    /// Number of 4-input LUTs (constant generators included).
    pub luts: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of I/O buffers (bonded IOBs).
    pub io_buffers: usize,
    /// Estimated slice count (2 LUTs + 2 FFs per slice).
    pub slices: usize,
    /// Combinational logic depth in LUT levels.
    pub logic_depth: usize,
    /// Estimated maximum clock frequency in MHz.
    pub fmax_mhz: f64,
}

impl ResourceEstimate {
    /// Estimated critical-path delay in nanoseconds.
    pub fn critical_path_ns(&self) -> f64 {
        CLOCK_OVERHEAD_NS + self.logic_depth as f64 * LUT_DELAY_NS
    }
}

/// Estimates the resources and performance of a technology-mapped netlist.
///
/// # Panics
///
/// Panics if the netlist contains a combinational loop (mapped designs
/// produced by the `tmr-synth` flow never do).
pub fn estimate_resources(netlist: &Netlist) -> ResourceEstimate {
    let stats = netlist.stats();
    let luts = stats.luts + stats.constants;
    let flip_flops = stats.flip_flops;
    let slices = usize::max(luts.div_ceil(2), flip_flops.div_ceil(2));
    let logic_depth = netlist.logic_depth().expect("mapped netlists are acyclic");
    let critical_path = CLOCK_OVERHEAD_NS + logic_depth as f64 * LUT_DELAY_NS;
    let fmax_mhz = 1000.0 / critical_path;
    ResourceEstimate {
        luts,
        flip_flops,
        io_buffers: stats.io_buffers,
        slices,
        logic_depth,
        fmax_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::CellKind;

    fn two_level_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_cell("l1", CellKind::Lut { k: 2, init: 0b1000 }, vec![a, b], x)
            .unwrap();
        nl.add_cell("l2", CellKind::Lut { k: 2, init: 0b0110 }, vec![x, b], y)
            .unwrap();
        nl.add_cell("ff", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_output("q", q);
        nl
    }

    #[test]
    fn counts_and_depth() {
        let estimate = estimate_resources(&two_level_netlist());
        assert_eq!(estimate.luts, 2);
        assert_eq!(estimate.flip_flops, 1);
        assert_eq!(estimate.slices, 1);
        assert_eq!(estimate.logic_depth, 2);
        assert!(estimate.fmax_mhz > 0.0);
        assert!(estimate.critical_path_ns() > 2.0 * LUT_DELAY_NS);
    }

    #[test]
    fn deeper_logic_is_slower() {
        let shallow = estimate_resources(&two_level_netlist());
        // Chain four more LUTs.
        let mut nl = two_level_netlist();
        let mut prev = nl
            .find_port("a", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        for i in 0..4 {
            let next = nl.add_net(format!("c{i}"));
            nl.add_cell(
                format!("chain{i}"),
                CellKind::Lut { k: 1, init: 0b01 },
                vec![prev],
                next,
            )
            .unwrap();
            prev = next;
        }
        nl.add_output("deep", prev);
        let deep = estimate_resources(&nl);
        assert!(deep.logic_depth > shallow.logic_depth);
        assert!(deep.fmax_mhz < shallow.fmax_mhz);
    }

    #[test]
    fn slices_are_limited_by_flip_flops_too() {
        let mut nl = Netlist::new("ffheavy");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..8 {
            let q = nl.add_net(format!("q{i}"));
            nl.add_cell(
                format!("ff{i}"),
                CellKind::Dff { init: false },
                vec![prev],
                q,
            )
            .unwrap();
            prev = q;
        }
        nl.add_output("y", prev);
        let estimate = estimate_resources(&nl);
        assert_eq!(estimate.flip_flops, 8);
        assert_eq!(estimate.slices, 4);
    }
}
