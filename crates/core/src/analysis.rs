//! Voter-partition analysis: the quantitative version of the paper's argument.
//!
//! The paper argues (Section 2, Fig. 3) that the probability of a routing
//! upset defeating TMR depends on how much logic from *distinct* redundant
//! domains lives inside the same voter partition: a bridge between two
//! domains is only dangerous if both corrupted signals reach the *same*
//! voter. [`partition_report`] computes, for every voter of a TMR'd design,
//! the backward cone of logic it protects (stopping at other voters and at
//! the triplicated inputs) and a cross-domain exposure figure for that cone.

use std::collections::{HashMap, HashSet};
use tmr_synth::{Design, SignalId, WordNodeId, WordOp};

/// The cone of logic protected by one voter group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Name of the word-level signal being voted (base name of the voter).
    pub voted_signal: String,
    /// Number of word-level nodes in the cone, per redundant domain.
    pub nodes_per_domain: [usize; 3],
    /// Total bus bits produced inside the cone (a proxy for the number of
    /// physical nets exposed).
    pub bits: usize,
}

impl PartitionInfo {
    /// Total nodes in the cone across the three domains.
    pub fn total_nodes(&self) -> usize {
        self.nodes_per_domain.iter().sum()
    }

    /// Cross-domain exposure: the number of node pairs drawn from two
    /// *different* redundant domains inside this partition. A routing upset
    /// that bridges two such nodes' signals can defeat the voter.
    pub fn cross_domain_pairs(&self) -> usize {
        let [a, b, c] = self.nodes_per_domain;
        a * b + a * c + b * c
    }
}

/// Voter-partition report for a TMR'd design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionReport {
    /// One entry per voter group (triplicated voters on the same signal are a
    /// single group), including the final output voters.
    pub partitions: Vec<PartitionInfo>,
    /// Number of word-level voter nodes (counting triplication).
    pub voter_nodes: usize,
}

impl PartitionReport {
    /// Number of voter groups (partitions).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The largest partition size in nodes.
    pub fn max_partition_nodes(&self) -> usize {
        self.partitions
            .iter()
            .map(PartitionInfo::total_nodes)
            .max()
            .unwrap_or(0)
    }

    /// Mean partition size in nodes.
    pub fn mean_partition_nodes(&self) -> f64 {
        if self.partitions.is_empty() {
            return 0.0;
        }
        self.partitions
            .iter()
            .map(PartitionInfo::total_nodes)
            .sum::<usize>() as f64
            / self.partitions.len() as f64
    }

    /// Total cross-domain exposure, summed over partitions. The paper's
    /// qualitative claim is that this figure is what a good voter placement
    /// minimises *per voter*: too few voters concentrate exposure in huge
    /// partitions, too many voters add cross-domain wiring of their own.
    pub fn total_cross_domain_pairs(&self) -> usize {
        self.partitions
            .iter()
            .map(PartitionInfo::cross_domain_pairs)
            .sum()
    }
}

/// Computes the voter-partition report of a (TMR-transformed) design.
///
/// Designs without voters produce an empty report.
pub fn partition_report(design: &Design) -> PartitionReport {
    // Group triplicated voters by the base signal they vote (identical input
    // sets), so each voter group is reported once.
    let mut groups: HashMap<Vec<SignalId>, Vec<WordNodeId>> = HashMap::new();
    for (id, node) in design.nodes() {
        if matches!(node.op, WordOp::Voter) {
            let mut key = node.inputs.clone();
            key.sort_unstable();
            groups.entry(key).or_default().push(id);
        }
    }
    // Triplicated output pins (`y_tr0/1/2`) are voted in the output logic
    // block, so they form a voter barrier too: group them by base port name.
    let mut output_groups: HashMap<String, (Vec<SignalId>, Vec<WordNodeId>)> = HashMap::new();
    for (id, node) in design.nodes() {
        if let WordOp::Output { port } = &node.op {
            if let Some((base, domain)) = port.rsplit_once("_tr") {
                if domain.len() == 1 && domain.chars().all(|c| c.is_ascii_digit()) {
                    let entry = output_groups.entry(base.to_string()).or_default();
                    entry.0.push(node.inputs[0]);
                    entry.1.push(id);
                }
            }
        }
    }
    for (_, (inputs, nodes)) in output_groups {
        if inputs.len() == 3 {
            let mut key = inputs;
            key.sort_unstable();
            groups.entry(key).or_default().extend(nodes);
        }
    }

    // Signals that terminate a backward cone: voter outputs and input ports.
    let mut barrier_signals: HashSet<SignalId> = HashSet::new();
    for (_, node) in design.nodes() {
        if matches!(node.op, WordOp::Voter | WordOp::Input) {
            if let Some(sig) = node.output {
                barrier_signals.insert(sig);
            }
        }
    }

    let mut partitions = Vec::new();
    let mut voter_nodes = 0;
    let mut group_list: Vec<(&Vec<SignalId>, &Vec<WordNodeId>)> = groups.iter().collect();
    group_list.sort_by_key(|(_, nodes)| nodes[0]);

    for (inputs, voters) in group_list {
        voter_nodes += voters.len();
        // Backward cone from the voter inputs, stopping at barriers.
        let mut cone_nodes: HashSet<WordNodeId> = HashSet::new();
        let mut stack: Vec<SignalId> = inputs.clone();
        let mut visited: HashSet<SignalId> = HashSet::new();
        while let Some(sig) = stack.pop() {
            if !visited.insert(sig) {
                continue;
            }
            let Some(driver) = design.signal(sig).driver else {
                continue;
            };
            let driver_node = design.node(driver);
            if matches!(driver_node.op, WordOp::Input | WordOp::Voter) {
                continue;
            }
            if cone_nodes.insert(driver) {
                for &input in &driver_node.inputs {
                    if !barrier_signals.contains(&input) {
                        stack.push(input);
                    } else {
                        // The barrier signal itself is not expanded further.
                    }
                }
            }
        }

        let mut nodes_per_domain = [0usize; 3];
        let mut bits = 0usize;
        for &node_id in &cone_nodes {
            let node = design.node(node_id);
            if let Some(d) = node.domain.redundant_index() {
                nodes_per_domain[d] += 1;
            }
            if let Some(sig) = node.output {
                bits += usize::from(design.signal(sig).width);
            }
        }

        let voted_signal = design
            .node(voters[0])
            .name
            .trim_end_matches(|c: char| c.is_ascii_digit())
            .trim_end_matches("_v")
            .trim_end_matches("_vout")
            .to_string();
        partitions.push(PartitionInfo {
            voted_signal,
            nodes_per_domain,
            bits,
        });
    }

    PartitionReport {
        partitions,
        voter_nodes,
    }
}

/// Returns the fraction of word-level signals whose domain is one of the
/// three redundant domains — a sanity metric used in reports.
pub fn redundant_signal_fraction(design: &Design) -> f64 {
    let total = design.signal_count();
    if total == 0 {
        return 0.0;
    }
    let redundant = design
        .signals()
        .filter(|(_, s)| s.domain.is_redundant())
        .count();
    redundant as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_tmr, TmrConfig};
    use tmr_designs_like::small_fir;

    /// A tiny FIR-like design local to the tests (this crate cannot depend on
    /// `tmr-designs`, which would create a dependency cycle in dev mode).
    mod tmr_designs_like {
        use tmr_synth::Design;

        pub fn small_fir() -> Design {
            let mut d = Design::new("fir3");
            let x = d.add_input("x", 6);
            let d1 = d.add_register("d1", x);
            let d2 = d.add_register("d2", d1);
            let p0 = d.add_mul_const("p0", x, 3, 12);
            let p1 = d.add_mul_const("p1", d1, -5, 12);
            let p2 = d.add_mul_const("p2", d2, 3, 12);
            let s1 = d.add_add("s1", p0, p1, 12);
            let s2 = d.add_add("s2", s1, p2, 12);
            d.add_output("y", s2);
            d
        }
    }

    #[test]
    fn unprotected_design_has_no_partitions() {
        let report = partition_report(&small_fir());
        assert_eq!(report.partition_count(), 0);
        assert_eq!(report.voter_nodes, 0);
        assert_eq!(report.total_cross_domain_pairs(), 0);
    }

    #[test]
    fn more_voters_means_more_smaller_partitions() {
        let base = small_fir();
        let p1 = partition_report(&apply_tmr(&base, &TmrConfig::paper_p1()).unwrap());
        let p3 = partition_report(&apply_tmr(&base, &TmrConfig::paper_p3()).unwrap());
        assert!(p1.partition_count() > p3.partition_count());
        assert!(p1.max_partition_nodes() <= p3.max_partition_nodes());
        assert!(p1.voter_nodes > p3.voter_nodes);
    }

    #[test]
    fn unvoted_registers_enlarge_partitions() {
        let base = small_fir();
        let p3 = partition_report(&apply_tmr(&base, &TmrConfig::paper_p3()).unwrap());
        let p3_nv = partition_report(&apply_tmr(&base, &TmrConfig::paper_p3_nv()).unwrap());
        // Without register voters the whole design is one partition behind the
        // output voter, so its maximum partition is at least as large.
        assert!(p3_nv.max_partition_nodes() >= p3.max_partition_nodes());
        assert!(p3_nv.partition_count() < p3.partition_count());
    }

    #[test]
    fn cross_domain_pairs_formula() {
        let info = PartitionInfo {
            voted_signal: "s".into(),
            nodes_per_domain: [2, 3, 4],
            bits: 36,
        };
        assert_eq!(info.total_nodes(), 9);
        assert_eq!(info.cross_domain_pairs(), 2 * 3 + 2 * 4 + 3 * 4);
    }

    #[test]
    fn redundant_fraction_rises_after_tmr() {
        let base = small_fir();
        let tmr = apply_tmr(&base, &TmrConfig::paper_p2()).unwrap();
        assert_eq!(redundant_signal_fraction(&base), 0.0);
        assert!(redundant_signal_fraction(&tmr) > 0.5);
    }
}
