//! The routed-design database: placement + routing + configuration bitstream.

use crate::{place, route, Placement, PlacerOptions, PnrError, RouterOptions};
use std::collections::HashMap;
use tmr_arch::{BitCategory, Bitstream, ConfigResource, Device, NodeId, PipId, SiteKind};
use tmr_netlist::{CellId, CellKind, Domain, NetId, Netlist};

/// The routing tree of one net: the set of routing-graph nodes and enabled
/// PIPs that connect the net's source pin to all of its sink pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTree {
    /// The source node (the driving cell's output pin).
    pub source: NodeId,
    /// All nodes of the tree, source included.
    pub nodes: Vec<NodeId>,
    /// The enabled PIPs (each PIP's configuration bit is set in the bitstream).
    pub pips: Vec<PipId>,
    /// The sink pins reached, with the consuming cell and pin index.
    pub sinks: Vec<(NodeId, CellId, usize)>,
}

/// Counts of design-related configuration bits per category — the "bitstream"
/// columns of Table 2 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitReport {
    /// General-routing bits related to the design (PIPs touching a used node).
    pub routing_bits: usize,
    /// CLB-customization bits related to the design (input-mux PIPs touching a
    /// used node).
    pub clb_mux_bits: usize,
    /// LUT truth-table bits of used LUTs.
    pub lut_bits: usize,
    /// Flip-flop configuration bits of used flip-flops.
    pub ff_bits: usize,
}

impl BitReport {
    /// Total design-related configuration bits.
    pub fn total(&self) -> usize {
        self.routing_bits + self.clb_mux_bits + self.lut_bits + self.ff_bits
    }

    /// Fraction of the design-related bits that control routing (general
    /// routing + CLB customization), the quantity the paper reports as
    /// "roughly 80 % of the total customizable bits".
    pub fn routing_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.routing_bits + self.clb_mux_bits) as f64 / self.total() as f64
    }
}

/// A fully placed, routed and configured design.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    netlist: Netlist,
    placement: Placement,
    routes: HashMap<NetId, RouteTree>,
    bitstream: Bitstream,
    node_net: HashMap<NodeId, NetId>,
    pip_net: HashMap<PipId, NetId>,
    design_bits: std::sync::OnceLock<Vec<usize>>,
}

impl RoutedDesign {
    /// The mapped netlist this design was built from.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The routing tree of a net, if that net is routed through the fabric.
    pub fn route_of(&self, net: NetId) -> Option<&RouteTree> {
        self.routes.get(&net)
    }

    /// Iterates over all routed nets.
    pub fn routes(&self) -> impl Iterator<Item = (NetId, &RouteTree)> {
        self.routes.iter().map(|(&net, tree)| (net, tree))
    }

    /// The configuration bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    /// The net using a routing node, if any.
    pub fn net_of_node(&self, node: NodeId) -> Option<NetId> {
        self.node_net.get(&node).copied()
    }

    /// Iterates over every routing node occupied by some net. Lets bulk
    /// consumers (e.g. the fault-list builder) precompute a used-node mask
    /// once instead of hashing per configuration bit.
    pub fn used_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_net.keys().copied()
    }

    /// The net whose tree enables a PIP, if any.
    pub fn net_of_pip(&self, pip: PipId) -> Option<NetId> {
        self.pip_net.get(&pip).copied()
    }

    /// The TMR domain of the signal carried by a net.
    pub fn net_domain(&self, net: NetId) -> Domain {
        self.netlist.net(net).domain
    }

    /// The TMR domain of the net occupying a routing node, if the node is
    /// used by the design.
    pub fn node_domain(&self, node: NodeId) -> Option<Domain> {
        self.net_of_node(node).map(|net| self.net_domain(net))
    }

    /// The TMR domains at the two endpoints of a PIP: `(source, destination)`.
    /// Each endpoint is `None` when no routed net uses that node. This is the
    /// domain view of the wires a new PIP would connect — a
    /// `(Some(a), Some(b))` pair with `a.crosses(b)` is a domain-crossing
    /// bridge candidate.
    pub fn pip_domains(&self, device: &Device, pip: PipId) -> (Option<Domain>, Option<Domain>) {
        let pip = device.pip(pip);
        (self.node_domain(pip.src), self.node_domain(pip.dst))
    }

    /// Counts the design-related configuration bits per category: every PIP
    /// touching a node used by the design, the truth-table bits of every used
    /// LUT and the configuration bit of every used flip-flop. These are the
    /// bits the paper's Fault List Manager extracts from its bitstream
    /// database, and the columns of Table 2.
    pub fn bit_report(&self, device: &Device) -> BitReport {
        let mut report = BitReport::default();
        let layout = device.config_layout();
        for bit in 0..layout.bit_count() {
            let resource = layout.resource_at(bit).expect("bit in range");
            if !self.resource_is_design_related(device, &resource) {
                continue;
            }
            match layout.category_at(bit) {
                BitCategory::GeneralRouting => report.routing_bits += 1,
                BitCategory::ClbCustomization => report.clb_mux_bits += 1,
                BitCategory::LutContents => report.lut_bits += 1,
                BitCategory::FlipFlop => report.ff_bits += 1,
            }
        }
        report
    }

    /// Returns `true` if a configuration resource is related to the design:
    /// PIPs with a used endpoint, LUT bits of used LUT sites, FF bits of used
    /// FF sites. This is the fault-injection population of the paper.
    pub fn resource_is_design_related(&self, device: &Device, resource: &ConfigResource) -> bool {
        match *resource {
            ConfigResource::Pip(pip) => {
                let pip = device.pip(pip);
                self.node_net.contains_key(&pip.src) || self.node_net.contains_key(&pip.dst)
            }
            ConfigResource::LutBit { site, .. } | ConfigResource::FfInit { site } => {
                self.placement.cell_at(site).is_some()
            }
        }
    }

    /// The configuration bits related to the design, in configuration-memory
    /// order: every bit whose resource satisfies
    /// [`RoutedDesign::resource_is_design_related`]. This is the fault-list
    /// population of the paper's Fault List Manager.
    ///
    /// The scan is computed once per routed design and cached: the used-node
    /// and used-site sets are materialized as index masks, so the pass over
    /// the (large) configuration memory costs two array probes per bit, and
    /// repeated campaigns on the same design (sweeps, streaming benches)
    /// reuse the list for free.
    pub fn design_related_bits(&self, device: &Device) -> &[usize] {
        self.design_bits.get_or_init(|| {
            let layout = device.config_layout();
            let mut node_used = vec![false; device.node_count()];
            for &node in self.node_net.keys() {
                node_used[node.index()] = true;
            }
            let mut site_used = vec![false; device.site_count()];
            for (_, site) in self.placement.iter() {
                site_used[site.index()] = true;
            }
            (0..layout.bit_count())
                .filter(
                    |&bit| match layout.resource_at(bit).expect("bit in range") {
                        ConfigResource::Pip(pip) => {
                            let pip = device.pip(pip);
                            node_used[pip.src.index()] || node_used[pip.dst.index()]
                        }
                        ConfigResource::LutBit { site, .. } | ConfigResource::FfInit { site } => {
                            site_used[site.index()]
                        }
                    },
                )
                .collect()
        })
    }

    /// Generates the configuration bitstream for this placed-and-routed design.
    fn generate_bitstream(
        device: &Device,
        netlist: &Netlist,
        placement: &Placement,
        routes: &HashMap<NetId, RouteTree>,
    ) -> Bitstream {
        let layout = device.config_layout();
        let mut bitstream = Bitstream::zeros(layout.bit_count());

        // Routing PIPs.
        for tree in routes.values() {
            for &pip in &tree.pips {
                bitstream.set(layout.pip_bit(pip), true);
            }
        }

        // LUT truth tables and FF initial values.
        for (cell_id, cell) in netlist.cells() {
            let site = placement.site(cell_id);
            match cell.kind {
                CellKind::Lut { k, init } => {
                    let mask = (1usize << k) - 1;
                    for entry in 0..16u8 {
                        let folded = usize::from(entry) & mask;
                        if (init >> folded) & 1 == 1 {
                            let bit = layout
                                .bit_of(&ConfigResource::LutBit { site, bit: entry })
                                .expect("LUT cells are placed on LUT sites");
                            bitstream.set(bit, true);
                        }
                    }
                }
                CellKind::Vcc => {
                    for entry in 0..16u8 {
                        let bit = layout
                            .bit_of(&ConfigResource::LutBit { site, bit: entry })
                            .expect("constant cells are placed on LUT sites");
                        bitstream.set(bit, true);
                    }
                }
                CellKind::Gnd => {} // all-zero truth table
                CellKind::Dff { init } => {
                    if init {
                        let bit = layout
                            .bit_of(&ConfigResource::FfInit { site })
                            .expect("DFF cells are placed on FF sites");
                        bitstream.set(bit, true);
                    }
                }
                CellKind::Ibuf | CellKind::Obuf => {} // IOBs carry no bits in this model
                _ => unreachable!("placement rejects unmapped cells"),
            }
        }

        bitstream
    }
}

/// Runs placement, routing and bitstream generation with default options and
/// the given seed.
///
/// # Errors
///
/// Propagates placement errors (unmapped cells, device too small) and routing
/// errors (unroutable congestion, unreachable sinks).
pub fn place_and_route(
    device: &Device,
    netlist: &Netlist,
    seed: u64,
) -> Result<RoutedDesign, PnrError> {
    let placement = place(
        device,
        netlist,
        &PlacerOptions {
            seed,
            ..PlacerOptions::default()
        },
    )?;
    let routes = route(device, netlist, &placement, &RouterOptions::default())?;
    Ok(RoutedDesign::assemble(device, netlist, placement, routes))
}

impl RoutedDesign {
    /// Assembles the routed-design database from the outputs of the
    /// individual [`place`] and [`route`] stages: generates the
    /// configuration bitstream and indexes which routing node and PIP
    /// belongs to which logical net.
    ///
    /// This is the final, infallible step of [`place_and_route`], exposed
    /// separately so staged pipelines can cache a [`Placement`] and re-enter
    /// the flow at the routing stage.
    pub fn assemble(
        device: &Device,
        netlist: &Netlist,
        placement: Placement,
        routes: HashMap<NetId, RouteTree>,
    ) -> RoutedDesign {
        let mut node_net = HashMap::new();
        let mut pip_net = HashMap::new();
        for (&net, tree) in &routes {
            for &node in &tree.nodes {
                node_net.insert(node, net);
            }
            for &pip in &tree.pips {
                pip_net.insert(pip, net);
            }
        }

        let bitstream = RoutedDesign::generate_bitstream(device, netlist, &placement, &routes);

        RoutedDesign {
            netlist: netlist.clone(),
            placement,
            routes,
            bitstream,
            node_net,
            pip_net,
            design_bits: std::sync::OnceLock::new(),
        }
    }

    /// Rebuilds the database from persisted parts — netlist, placement,
    /// routing trees and the already-generated bitstream — without a
    /// [`Device`]: unlike [`RoutedDesign::assemble`] the bitstream is taken
    /// as given (it was generated when the design was first assembled), and
    /// only the node/PIP occupancy indexes are rebuilt from the routes. Used
    /// by the `tmr-store` codec.
    pub fn from_parts(
        netlist: Netlist,
        placement: Placement,
        routes: HashMap<NetId, RouteTree>,
        bitstream: Bitstream,
    ) -> RoutedDesign {
        let mut node_net = HashMap::new();
        let mut pip_net = HashMap::new();
        for (&net, tree) in &routes {
            for &node in &tree.nodes {
                node_net.insert(node, net);
            }
            for &pip in &tree.pips {
                pip_net.insert(pip, net);
            }
        }
        RoutedDesign {
            netlist,
            placement,
            routes,
            bitstream,
            node_net,
            pip_net,
            design_bits: std::sync::OnceLock::new(),
        }
    }
}

/// Number of sites of each kind used by a placement — convenience for
/// utilisation reports.
pub fn site_usage(device: &Device, placement: &Placement) -> HashMap<SiteKind, usize> {
    let mut usage: HashMap<SiteKind, usize> = HashMap::new();
    for (_, site) in placement.iter() {
        *usage.entry(device.site(site).kind).or_insert(0) += 1;
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_designs::{counter, moving_sum};
    use tmr_synth::{lower, optimize, techmap};

    fn mapped(design: &tmr_synth::Design) -> Netlist {
        techmap(&optimize(&lower(design).unwrap())).unwrap()
    }

    #[test]
    fn bitstream_bits_match_enabled_pips_and_luts() {
        let device = Device::small(5, 5);
        let netlist = mapped(&counter(4));
        let routed = place_and_route(&device, &netlist, 7).unwrap();
        let layout = device.config_layout();

        // Every enabled PIP bit must be set.
        let mut expected_pip_bits = 0;
        for (_, tree) in routed.routes() {
            expected_pip_bits += tree.pips.len();
            for &pip in &tree.pips {
                assert!(routed.bitstream().get(layout.pip_bit(pip)));
            }
        }
        // Count set bits that are PIP bits.
        let set_pip_bits = routed
            .bitstream()
            .iter_ones()
            .filter(|&bit| matches!(layout.resource_at(bit), Some(ConfigResource::Pip(_))))
            .count();
        assert_eq!(set_pip_bits, expected_pip_bits);
    }

    #[test]
    fn node_and_pip_usage_maps_are_consistent() {
        let device = Device::small(5, 5);
        let netlist = mapped(&counter(4));
        let routed = place_and_route(&device, &netlist, 7).unwrap();
        for (net, tree) in routed.routes() {
            for &node in &tree.nodes {
                assert_eq!(routed.net_of_node(node), Some(net));
            }
            for &pip in &tree.pips {
                assert_eq!(routed.net_of_pip(pip), Some(net));
            }
        }
        assert_eq!(
            routed.net_of_node(NodeId::from_index(usize::MAX as u32 as usize - 1)),
            None
        );
    }

    #[test]
    fn bit_report_is_dominated_by_routing() {
        let device = Device::small(6, 6);
        let netlist = mapped(&moving_sum(3, 4, 6));
        let routed = place_and_route(&device, &netlist, 3).unwrap();
        let report = routed.bit_report(&device);
        assert!(report.total() > 0);
        assert!(report.lut_bits > 0);
        assert!(
            report.routing_fraction() > 0.6,
            "routing bits should dominate, got {:.2}",
            report.routing_fraction()
        );
        assert_eq!(report.lut_bits % 16, 0, "16 bits per used LUT");
    }

    #[test]
    fn domain_lookups_follow_the_netlist_tags() {
        use tmr_core::{apply_tmr, TmrConfig};
        use tmr_designs::counter;
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = mapped(&design);
        let routed = place_and_route(&device, &netlist, 5).unwrap();

        let mut redundant_nets = 0;
        for (net, tree) in routed.routes() {
            let domain = routed.net_domain(net);
            if domain.is_redundant() {
                redundant_nets += 1;
            }
            for &node in &tree.nodes {
                assert_eq!(routed.node_domain(node), Some(domain));
            }
            for &pip in &tree.pips {
                let (src, dst) = routed.pip_domains(&device, pip);
                assert_eq!(src, Some(domain));
                assert_eq!(dst, Some(domain));
            }
        }
        assert!(
            redundant_nets > 0,
            "TMR designs route redundant-domain nets"
        );
        assert_eq!(
            routed.node_domain(NodeId::from_index(usize::MAX as u32 as usize - 1)),
            None
        );
    }

    #[test]
    fn site_usage_counts_placed_cells() {
        let device = Device::small(5, 5);
        let netlist = mapped(&counter(4));
        let routed = place_and_route(&device, &netlist, 7).unwrap();
        let usage = site_usage(&device, routed.placement());
        let stats = netlist.stats();
        assert_eq!(usage[&SiteKind::Ff], stats.flip_flops);
        assert_eq!(usage[&SiteKind::Iob], stats.io_buffers);
        assert_eq!(usage[&SiteKind::Lut], stats.luts + stats.constants);
    }

    #[test]
    fn larger_designs_route_on_adequate_devices() {
        let device = Device::small(8, 8);
        let netlist = mapped(&moving_sum(4, 5, 8));
        let routed = place_and_route(&device, &netlist, 11).unwrap();
        assert!(routed.routes().count() > 10);
        assert!(routed.bitstream().count_ones() > 100);
    }
}
