//! Negotiated-congestion A* maze routing (PathFinder style).
//!
//! The router combines three mechanisms, each pinned by differential tests:
//!
//! * **Directed search.** Every sink is found with A* over the device's
//!   routing graph, guided by the admissible per-device
//!   [`Lookahead`](crate::Lookahead) table and confined to the net's
//!   bounding box (plus [`RouterOptions::bbox_margin`] tiles of slack); a
//!   sink that cannot be reached inside the box deterministically retries
//!   unconfined. All search state lives in per-worker
//!   generation-stamped scratch arrays indexed by node id, so routing a net
//!   allocates nothing.
//! * **Snapshot-commit negotiation.** Within each PathFinder iteration the
//!   to-be-rerouted nets are swept in net order and greedily packed into
//!   *spatially disjoint* chunks: a net joins the current chunk only if its
//!   search rectangle intersects none already admitted. At each flush the
//!   chunk's nets are ripped up, routed against the *frozen* occupancy and
//!   history costs (in parallel across `std::thread::scope` workers), and
//!   committed in net order at the barrier. Disjoint rectangles mean
//!   disjoint node sets, so the chunked result is identical to a pure
//!   net-by-net (Gauss–Seidel) sweep for *every* chunk size — and
//!   [`RouterOptions::chunk_size`] and the worker count are pure
//!   performance knobs that never change the answer. The sequential router
//!   (`TMR_ROUTE=seq`) is kept as the differential oracle and must produce
//!   byte-identical [`RouteTree`]s.
//! * **Congestion pricing.** Node costs follow the classic PathFinder
//!   schedule: a present-congestion factor that grows gently each iteration
//!   plus an accumulated history cost on every overused node.

use crate::lookahead::Lookahead;
use crate::routed::RouteTree;
use crate::{Placement, PnrError};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;
use tmr_arch::{Device, NodeId, PipId, RouteNode};
use tmr_netlist::{NetDriver, NetId, NetSink, Netlist};

/// Router options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// Maximum negotiation iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion penalty factor.
    pub present_factor: f64,
    /// Multiplier applied to the present-congestion factor each iteration.
    pub present_factor_growth: f64,
    /// Ceiling on the present-congestion factor. Beyond it the accumulated
    /// history cost does the arbitration; an uncapped factor makes every
    /// must-displace search explore a cost ball as wide as the penalty.
    pub present_factor_max: f64,
    /// Historical congestion cost added to every overused node per iteration.
    pub history_increment: f64,
    /// A* heuristic weight (1.0 = admissible, larger = faster but greedier).
    pub astar_weight: f64,
    /// Search-confinement slack: tiles added around each net's terminal
    /// bounding box before the A* expansion is clipped to it.
    pub bbox_margin: u16,
    /// Worker threads for the parallel negotiation. `0` resolves the
    /// `TMR_ROUTE` environment variable at each [`route`] call: `seq` → 1
    /// (the sequential differential oracle), a number → that many workers,
    /// unset → the machine's available parallelism. Any other value falls
    /// back to 1.
    pub workers: usize,
    /// Nets per snapshot-commit chunk. The chunk size — not the worker
    /// count — defines the negotiation schedule, so results are identical
    /// for any `workers` value.
    pub chunk_size: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        // The growth factor must stay gentle: with an aggressive schedule
        // (e.g. 1.8 per iteration) the present-congestion penalty explodes
        // after a few dozen iterations, the router degenerates into pure
        // avoidance of any occupied node and negotiation oscillates instead
        // of converging — overuse *increases* with more iterations.
        Self {
            max_iterations: 250,
            present_factor: 0.6,
            present_factor_growth: 1.2,
            present_factor_max: 32.0,
            history_increment: 1.5,
            astar_weight: 2.25,
            bbox_margin: 3,
            workers: 0,
            chunk_size: 16,
        }
    }
}

/// Resolves the effective worker count for `options` (see
/// [`RouterOptions::workers`]).
pub fn resolved_workers(options: &RouterOptions) -> usize {
    if options.workers > 0 {
        return options.workers;
    }
    match std::env::var("TMR_ROUTE") {
        Ok(value) if value.trim() == "seq" => 1,
        Ok(value) => value
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    estimate: f32,
    cost: f32,
    node: NodeId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.estimate == other.estimate
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest estimate.
        other
            .estimate
            .total_cmp(&self.estimate)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

/// Inclusive tile-coordinate bounds confining one net's search.
#[derive(Debug, Clone, Copy)]
struct TileBounds {
    min_x: u16,
    min_y: u16,
    max_x: u16,
    max_y: u16,
}

impl TileBounds {
    #[inline]
    fn contains(&self, x: u16, y: u16) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    /// Whether the bounds cover the whole grid (confinement is a no-op).
    fn covers_grid(&self, cols: u16, rows: u16) -> bool {
        self.min_x == 0 && self.min_y == 0 && self.max_x + 1 >= cols && self.max_y + 1 >= rows
    }

    /// Whether two rectangles share at least one tile.
    fn intersects(&self, other: &TileBounds) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }
}

/// The clipped search rectangle for one net attempt: the terminal bounding
/// box, widened by the base margin plus one tile per rip-up the net has
/// suffered (so congestion-locked nets progressively escape their
/// neighbourhood). Used both to confine the A* expansion and to decide which
/// nets may share a snapshot-commit chunk.
fn search_rect(
    terminals: &NetTerminals,
    rip_count: u16,
    bbox_margin: u16,
    cols: u16,
    rows: u16,
) -> TileBounds {
    let margin = bbox_margin.saturating_add(rip_count);
    TileBounds {
        min_x: terminals.bbox.min_x.saturating_sub(margin),
        min_y: terminals.bbox.min_y.saturating_sub(margin),
        max_x: terminals
            .bbox
            .max_x
            .saturating_add(margin)
            .min(cols.saturating_sub(1)),
        max_y: terminals
            .bbox
            .max_y
            .saturating_add(margin)
            .min(rows.saturating_sub(1)),
    }
}

/// The terminals of one routable net, with its pre-sorted sinks and raw
/// (margin-free) terminal bounding box.
struct NetTerminals {
    net: NetId,
    source: NodeId,
    /// Sinks sorted by Manhattan distance from the source tile, so the
    /// closest sinks are routed first and later sinks reuse the growing tree.
    sinks: Vec<(NodeId, tmr_netlist::CellId, usize)>,
    /// Tight bounds over the terminals; the search margin is added per
    /// attempt (and grows with the net's rip-up count, so congestion-locked
    /// nets can escape their neighbourhood).
    bbox: TileBounds,
}

/// One negotiation iteration's congestion signals.
///
/// These are the numbers that expose the divergence class fixed in the
/// present-factor schedule (see [`RouterOptions::default`]): a healthy run
/// shows `overused_nodes` trending to zero while `present_factor` grows
/// gently; an oscillating run shows overuse flat or growing as the factor
/// explodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteIteration {
    /// 1-based negotiation iteration number.
    pub iteration: usize,
    /// Nets ripped up (previous tree discarded) this iteration.
    pub ripped_up: usize,
    /// Nets routed (first-time or re-routed) this iteration.
    pub rerouted: usize,
    /// Nodes with more than one occupant after this iteration.
    pub overused_nodes: usize,
    /// Present-congestion penalty factor used during this iteration.
    pub present_factor: f64,
    /// A* queue pops across every net routed this iteration. Deterministic:
    /// independent of the worker count.
    pub nodes_expanded: u64,
    /// Wall-clock time of this iteration in nanoseconds.
    pub elapsed_ns: u64,
}

/// Per-iteration telemetry of one [`route_with_telemetry`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteTelemetry {
    /// One entry per negotiation iteration, in order.
    pub iterations: Vec<RouteIteration>,
    /// Worker threads the negotiation ran with (after `TMR_ROUTE`
    /// resolution).
    pub workers: usize,
}

impl RouteTelemetry {
    /// Number of negotiation iterations performed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Whether the run ended with zero overused nodes.
    pub fn converged(&self) -> bool {
        self.iterations
            .last()
            .is_some_and(|last| last.overused_nodes == 0)
    }

    /// Total nets ripped up across all iterations.
    pub fn total_rip_ups(&self) -> usize {
        self.iterations.iter().map(|it| it.ripped_up).sum()
    }

    /// Total A* queue pops across all iterations.
    pub fn total_nodes_expanded(&self) -> u64 {
        self.iterations.iter().map(|it| it.nodes_expanded).sum()
    }

    /// Total wall-clock routing time across all iterations.
    pub fn total_elapsed(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.iterations.iter().map(|it| it.elapsed_ns).sum())
    }
}

/// Routes every cell-to-cell net of a placed netlist.
///
/// # Errors
///
/// Returns [`PnrError::NoPath`] if a sink is unreachable from its source and
/// [`PnrError::Unroutable`] if congestion cannot be resolved within the
/// iteration budget.
pub fn route(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
) -> Result<HashMap<NetId, RouteTree>, PnrError> {
    route_with_telemetry(device, netlist, placement, options).0
}

/// [`route`], additionally returning the per-iteration negotiation
/// telemetry — which is populated (and emitted as `route.iteration` trace
/// events when tracing is enabled) even when routing fails, so a diverging
/// run leaves its congestion history behind for inspection.
pub fn route_with_telemetry(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
) -> (Result<HashMap<NetId, RouteTree>, PnrError>, RouteTelemetry) {
    let mut telemetry = RouteTelemetry::default();
    let result = route_inner(device, netlist, placement, options, &mut telemetry);
    (result, telemetry)
}

/// Read-only per-call routing context shared by all workers.
struct RouteContext<'a> {
    device: &'a Device,
    netlist: &'a Netlist,
    lookahead: &'a Lookahead,
    /// CSR-flattened routing graph: node `i`'s outgoing PIPs live at
    /// `adj_start[i]..adj_start[i + 1]` in `edges`. One contiguous scan per
    /// expansion instead of two indirect struct loads per neighbour.
    adj_start: Vec<u32>,
    edges: Vec<Edge>,
    cols: u16,
    rows: u16,
    bbox_margin: u16,
}

/// One CSR adjacency entry: destination node and the PIP that reaches it,
/// interleaved so a neighbour scan touches one cache line stream.
#[derive(Debug, Clone, Copy)]
struct Edge {
    dst: u32,
    pip: u32,
}

/// Everything the expansion loop needs to price and locate one node, packed
/// into a single 12-byte record so each neighbour touch costs one cache line
/// instead of five (`cost_static`, `occupancy`, `is_in_pin`, `tile_x`,
/// `tile_y` used to live in separate arrays). `cost_static` (base + history)
/// is refreshed once per iteration and `occupancy` at chunk barriers — both
/// on the main thread, so workers always read a frozen snapshot.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Congestion-free cost of the node this iteration: base + history.
    cost_static: f32,
    /// Current committed occupant count.
    occupancy: u16,
    /// 1 if the node is a cell input pin (enterable only as the target sink).
    is_in_pin: u16,
    tile_x: u16,
    tile_y: u16,
}

/// Per-node A* search record (cost, visit stamp, arriving PIP), packed for
/// the same reason as [`NodeState`].
#[derive(Debug, Clone, Copy)]
struct SearchRec {
    best_cost: f32,
    generation: u32,
    prev_pip: u32,
}

/// Per-worker reusable search state, all indexed by node id and invalidated
/// in O(1) with generation stamps.
struct RouterScratch {
    search: Vec<SearchRec>,
    /// Tree-membership stamps: `in_tree[i] == tree_generation` iff node `i`
    /// is part of the net currently being routed.
    in_tree: Vec<u32>,
    queue: BinaryHeap<QueueEntry>,
    current_generation: u32,
    tree_generation: u32,
    nodes_expanded: u64,
}

impl RouterScratch {
    fn new(node_count: usize) -> Self {
        Self {
            search: vec![
                SearchRec {
                    best_cost: f32::INFINITY,
                    generation: 0,
                    prev_pip: u32::MAX,
                };
                node_count
            ],
            in_tree: vec![0; node_count],
            queue: BinaryHeap::new(),
            current_generation: 0,
            tree_generation: 0,
            nodes_expanded: 0,
        }
    }
}

fn route_inner(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
    telemetry: &mut RouteTelemetry,
) -> Result<HashMap<NetId, RouteTree>, PnrError> {
    let workers = resolved_workers(options);
    let chunk_size = options.chunk_size.max(1);
    telemetry.workers = workers;

    let node_count = device.node_count();
    let lookahead = Lookahead::for_device(device);
    let mut base = vec![0f32; node_count];
    let mut states = Vec::with_capacity(node_count);
    let mut adj_start = Vec::with_capacity(node_count + 1);
    let mut edges = Vec::with_capacity(device.pip_count());
    for (index, base_slot) in base.iter_mut().enumerate() {
        let id = NodeId::from_index(index);
        let tile = device.node_tile(id);
        let node = device.node(id);
        *base_slot = base_cost(&node);
        states.push(NodeState {
            cost_static: *base_slot,
            occupancy: 0,
            is_in_pin: u16::from(node.is_in_pin()),
            tile_x: tile.x,
            tile_y: tile.y,
        });
        adj_start.push(edges.len() as u32);
        for &pip_id in device.pips_from(id) {
            edges.push(Edge {
                dst: device.pip(pip_id).dst.index() as u32,
                pip: pip_id.index() as u32,
            });
        }
    }
    adj_start.push(edges.len() as u32);
    let ctx = RouteContext {
        device,
        netlist,
        lookahead: &lookahead,
        adj_start,
        edges,
        cols: device.cols(),
        rows: device.rows(),
        bbox_margin: options.bbox_margin,
    };

    let nets = collect_terminals(device, netlist, placement);

    if tmr_trace::enabled() {
        tmr_trace::event("route.astar")
            .attr("lookahead_entries", lookahead.entries())
            .attr("astar_weight", options.astar_weight)
            .attr("bbox_margin", u32::from(options.bbox_margin));
        tmr_trace::event("route.parallel")
            .attr("workers", workers)
            .attr("chunk_size", chunk_size)
            .attr("nets", nets.len());
    }

    let mut history = vec![0f32; node_count];
    let mut scratches: Vec<RouterScratch> = (0..workers.max(1))
        .map(|_| RouterScratch::new(node_count))
        .collect();

    let mut trees: Vec<Option<RouteTree>> = (0..nets.len()).map(|_| None).collect();
    // Per-net rip-up counts: each rip-up widens that net's search margin, so
    // nets locked in a congestion fight progressively escape their bounding
    // boxes. Part of the negotiation schedule — worker-independent.
    let mut rip_counts: Vec<u16> = vec![0; nets.len()];
    let mut present_factor = options.present_factor;

    for iteration in 1..=options.max_iterations {
        let iter_start = Instant::now();
        let present_f32 = present_factor as f32;
        // Late-negotiation safety net: past `WEIGHT_DECAY_START` iterations
        // the per-iteration base weight decays geometrically toward the
        // admissible 1.0, so a run that has not converged degenerates into
        // the slower but robust best-first search instead of oscillating
        // forever on beeline paths. Converging runs finish well before the
        // decay starts and never see it.
        const WEIGHT_DECAY_START: i32 = 60;
        const WEIGHT_DECAY: f64 = 0.9;
        let weight = (options.astar_weight
            * WEIGHT_DECAY.powi((iteration as i32 - WEIGHT_DECAY_START).max(0)))
        .max(1.0) as f32;
        let mut rerouted = 0usize;
        let mut ripped_up = 0usize;

        // Every iteration sweeps all nets in net order, greedily packing the
        // ones that need rerouting into *spatially disjoint* chunks: a net
        // joins the open chunk only if its search rectangle overlaps none of
        // the chunk's. Disjoint rectangles touch disjoint routing nodes, so
        // the chunk's nets cannot contend — routing them against the frozen
        // snapshot behaves like routing them one at a time, which keeps the
        // convergence of sequential negotiation while exposing the chunk to
        // the worker pool. A conflicting net flushes the chunk first, so
        // contending nets always see each other's committed routes. The
        // schedule depends only on committed state and `chunk_size` — never
        // on the worker count.
        let mut chunk: Vec<u32> = Vec::with_capacity(chunk_size);
        let mut rects: Vec<TileBounds> = Vec::with_capacity(chunk_size);
        let mut index = 0u32;
        while (index as usize) < nets.len() {
            // The live congestion check: a net displaced by an earlier flush
            // in this same sweep is picked up here — the same-iteration
            // cascade sequential negotiation relies on to converge. It runs
            // against fully committed state: a conflicting net flushes the
            // open chunk *without advancing*, so it is re-examined afterwards
            // (the flush may have resolved its congestion).
            let needs_reroute = match &trees[index as usize] {
                None => true,
                Some(tree) => tree.nodes.iter().any(|n| states[n.index()].occupancy > 1),
            };
            if !needs_reroute {
                index += 1;
                continue;
            }
            // The rect a flush would actually search: ripping an existing
            // tree bumps the net's rip count (and so its margin) first.
            let margin_rips = rip_counts[index as usize]
                .saturating_add(u16::from(trees[index as usize].is_some()));
            let rect = search_rect(
                &nets[index as usize],
                margin_rips,
                ctx.bbox_margin,
                ctx.cols,
                ctx.rows,
            );
            if chunk.len() >= chunk_size || rects.iter().any(|r| r.intersects(&rect)) {
                flush_chunk(
                    &ctx,
                    &nets,
                    &chunk,
                    &mut rip_counts,
                    &mut states,
                    &mut trees,
                    present_f32,
                    weight,
                    workers,
                    &mut scratches,
                    &mut rerouted,
                    &mut ripped_up,
                )?;
                chunk.clear();
                rects.clear();
                continue;
            }
            chunk.push(index);
            rects.push(rect);
            index += 1;
        }
        if !chunk.is_empty() {
            flush_chunk(
                &ctx,
                &nets,
                &chunk,
                &mut rip_counts,
                &mut states,
                &mut trees,
                present_f32,
                weight,
                workers,
                &mut scratches,
                &mut rerouted,
                &mut ripped_up,
            )?;
        }

        let overused: usize = states.iter().filter(|s| s.occupancy > 1).count();
        let nodes_expanded: u64 = scratches
            .iter_mut()
            .map(|s| std::mem::take(&mut s.nodes_expanded))
            .sum();
        telemetry.iterations.push(RouteIteration {
            iteration,
            ripped_up,
            rerouted,
            overused_nodes: overused,
            present_factor,
            nodes_expanded,
            elapsed_ns: iter_start.elapsed().as_nanos() as u64,
        });
        if tmr_trace::enabled() {
            tmr_trace::event("route.iteration")
                .attr("iteration", iteration)
                .attr("overused", overused)
                .attr("ripped_up", ripped_up)
                .attr("rerouted", rerouted)
                .attr("present_factor", present_factor)
                .attr("nodes_expanded", nodes_expanded);
        }
        if overused == 0 {
            return Ok(nets
                .iter()
                .zip(trees)
                .map(|(terminals, tree)| {
                    (
                        terminals.net,
                        tree.expect("every net routed at convergence"),
                    )
                })
                .collect());
        }
        if iteration == options.max_iterations {
            return Err(PnrError::Unroutable {
                overused_nodes: overused,
                iterations: iteration,
            });
        }
        for node in 0..node_count {
            let occ = states[node].occupancy;
            if occ > 1 {
                history[node] += (options.history_increment * f64::from(occ - 1)) as f32;
            }
            states[node].cost_static = base[node] + history[node];
        }
        present_factor =
            (present_factor * options.present_factor_growth).min(options.present_factor_max);
    }
    unreachable!("the loop either returns success or exhausts its iterations");
}

/// Rips up, routes, and commits one spatially disjoint chunk of nets.
/// Occupancy is frozen for the duration of the chunk: every net — on any
/// worker — routes against the same congestion snapshot, and the results are
/// committed in net order at the barrier (the first failure in net order
/// wins, keeping errors deterministic too).
#[allow(clippy::too_many_arguments)]
fn flush_chunk(
    ctx: &RouteContext<'_>,
    nets: &[NetTerminals],
    chunk: &[u32],
    rip_counts: &mut [u16],
    states: &mut [NodeState],
    trees: &mut [Option<RouteTree>],
    present_factor: f32,
    weight: f32,
    workers: usize,
    scratches: &mut [RouterScratch],
    rerouted: &mut usize,
    ripped_up: &mut usize,
) -> Result<(), PnrError> {
    if chunk.is_empty() {
        return Ok(());
    }
    *rerouted += chunk.len();

    let mut starts: Vec<RouteTree> = Vec::with_capacity(chunk.len());
    for &index in chunk {
        let terminals = &nets[index as usize];
        if let Some(old) = trees[index as usize].take() {
            *ripped_up += 1;
            rip_counts[index as usize] = rip_counts[index as usize].saturating_add(1);
            // Partial rip-up: keep the subtree serving sinks whose paths
            // avoid every overused node, so a high-fanout net with one
            // congested branch re-searches one branch, not all of them.
            // Occupancy is still released for the whole old tree and
            // re-acquired at commit — the kept subtree is a search seed, not
            // a committed claim.
            let start = prune_tree(ctx.device, &old, states);
            for node in &old.nodes {
                states[node.index()].occupancy -= 1;
            }
            starts.push(start);
        } else {
            starts.push(RouteTree {
                source: terminals.source,
                nodes: vec![terminals.source],
                pips: Vec::new(),
                sinks: Vec::new(),
            });
        }
    }

    let results = route_chunk(
        ctx,
        nets,
        chunk,
        starts,
        rip_counts,
        states,
        present_factor,
        weight,
        workers,
        scratches,
    );

    for (&index, result) in chunk.iter().zip(results) {
        let tree = result?;
        for node in &tree.nodes {
            states[node.index()].occupancy += 1;
        }
        trees[index as usize] = Some(tree);
    }
    Ok(())
}

/// Splits a committed tree into the subtree serving sinks whose paths avoid
/// every overused node. The pruned tree (sinks cleared — [`route_net`]
/// re-collects them) becomes the search seed for the net's reroute, so only
/// the congested branches are searched again. Depends only on committed
/// negotiation state, so it is worker-independent.
fn prune_tree(device: &Device, old: &RouteTree, states: &[NodeState]) -> RouteTree {
    // Each non-source tree node is entered by exactly one tree PIP; index
    // them by destination for the backwalks below.
    let mut parent: Vec<(u32, PipId)> = old
        .pips
        .iter()
        .map(|&pip| (device.pip(pip).dst.index() as u32, pip))
        .collect();
    parent.sort_unstable_by_key(|&(dst, _)| dst);

    let mut keep_nodes: Vec<u32> = vec![old.source.index() as u32];
    let mut keep_pips: Vec<u32> = Vec::new();
    let mut path_nodes: Vec<u32> = Vec::new();
    let mut path_pips: Vec<u32> = Vec::new();
    for &(sink, _, _) in &old.sinks {
        path_nodes.clear();
        path_pips.clear();
        let mut node = sink;
        let clean = loop {
            if states[node.index()].occupancy > 1 {
                break false;
            }
            path_nodes.push(node.index() as u32);
            let entry = parent
                .binary_search_by_key(&(node.index() as u32), |&(dst, _)| dst)
                .ok()
                .map(|found| parent[found].1);
            match entry {
                Some(pip) => {
                    path_pips.push(pip.index() as u32);
                    node = device.pip(pip).src;
                }
                None => break true,
            }
        };
        if clean {
            keep_nodes.extend_from_slice(&path_nodes);
            keep_pips.extend_from_slice(&path_pips);
        }
    }
    keep_nodes.sort_unstable();
    keep_nodes.dedup();
    keep_pips.sort_unstable();
    keep_pips.dedup();

    RouteTree {
        source: old.source,
        nodes: old
            .nodes
            .iter()
            .copied()
            .filter(|n| keep_nodes.binary_search(&(n.index() as u32)).is_ok())
            .collect(),
        pips: old
            .pips
            .iter()
            .copied()
            .filter(|p| keep_pips.binary_search(&(p.index() as u32)).is_ok())
            .collect(),
        sinks: Vec::new(),
    }
}

/// Routes one chunk of ripped-up nets against the frozen congestion
/// snapshot, inline when `workers == 1` and on scoped threads otherwise.
/// Results come back in chunk order either way.
#[allow(clippy::too_many_arguments)]
fn route_chunk(
    ctx: &RouteContext<'_>,
    nets: &[NetTerminals],
    chunk: &[u32],
    starts: Vec<RouteTree>,
    rip_counts: &[u16],
    states: &[NodeState],
    present_factor: f32,
    weight: f32,
    workers: usize,
    scratches: &mut [RouterScratch],
) -> Vec<Result<RouteTree, PnrError>> {
    if workers <= 1 || chunk.len() <= 1 {
        let scratch = &mut scratches[0];
        return chunk
            .iter()
            .zip(starts)
            .map(|(&index, start)| {
                route_net(
                    ctx,
                    &nets[index as usize],
                    start,
                    rip_counts[index as usize],
                    states,
                    present_factor,
                    weight,
                    scratch,
                )
            })
            .collect();
    }

    let threads = workers.min(chunk.len());
    // Strided assignment, partitioned up front so each worker owns its
    // starting trees: worker `w` gets chunk positions `w, w + threads, …`.
    let mut assignments: Vec<Vec<(usize, u32, RouteTree)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (position, (&index, start)) in chunk.iter().zip(starts).enumerate() {
        assignments[position % threads].push((position, index, start));
    }
    let mut slots: Vec<Option<Result<RouteTree, PnrError>>> =
        (0..chunk.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = scratches
            .iter_mut()
            .take(threads)
            .zip(assignments)
            .map(|(scratch, assignment)| {
                scope.spawn(move || {
                    assignment
                        .into_iter()
                        .map(|(position, index, start)| {
                            (
                                position,
                                route_net(
                                    ctx,
                                    &nets[index as usize],
                                    start,
                                    rip_counts[index as usize],
                                    states,
                                    present_factor,
                                    weight,
                                    scratch,
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (position, result) in handle.join().expect("router worker panicked") {
                slots[position] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk slot routed"))
        .collect()
}

/// Gathers source and sink routing nodes for every net that must be routed:
/// nets driven by a placed cell and read by at least one placed cell.
fn collect_terminals(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
) -> Vec<NetTerminals> {
    let mut nets = Vec::new();
    for (net_id, net) in netlist.nets() {
        let driver = match net.driver {
            Some(NetDriver::Cell(c)) => c,
            _ => continue,
        };
        let mut sinks: Vec<(NodeId, tmr_netlist::CellId, usize)> = net
            .sinks
            .iter()
            .filter_map(|sink| match sink {
                NetSink::CellPin { cell, pin } => {
                    let site = placement.site(*cell);
                    Some((device.in_pins(site)[*pin], *cell, *pin))
                }
                NetSink::Output(_) => None,
            })
            .collect();
        if sinks.is_empty() {
            continue;
        }
        let source = device.out_pin(placement.site(driver));
        let source_tile = device.node_tile(source);
        // Route the closest sinks first so later sinks reuse the growing
        // tree (stable sort: equal distances keep netlist pin order).
        sinks.sort_by_key(|(node, _, _)| device.node_tile(*node).manhattan(source_tile));

        let mut bbox = TileBounds {
            min_x: source_tile.x,
            min_y: source_tile.y,
            max_x: source_tile.x,
            max_y: source_tile.y,
        };
        for (node, _, _) in &sinks {
            let tile = device.node_tile(*node);
            bbox.min_x = bbox.min_x.min(tile.x);
            bbox.min_y = bbox.min_y.min(tile.y);
            bbox.max_x = bbox.max_x.max(tile.x);
            bbox.max_y = bbox.max_y.max(tile.y);
        }
        nets.push(NetTerminals {
            net: net_id,
            source,
            sinks,
            bbox,
        });
    }
    // Route high-fanout nets first: they are the hardest to place well.
    nets.sort_by_key(|t| std::cmp::Reverse(t.sinks.len()));
    nets
}

/// Congestion-free base cost of occupying `node` (shared with the lookahead
/// table, which needs the same floors).
pub(crate) fn base_cost(node: &RouteNode) -> f32 {
    match node {
        RouteNode::Wire { .. } => 1.0f32,
        RouteNode::InPin { .. } | RouteNode::OutPin { .. } => 0.95,
    }
}

#[allow(clippy::too_many_arguments)]
fn route_net(
    ctx: &RouteContext<'_>,
    terminals: &NetTerminals,
    start: RouteTree,
    rip_count: u16,
    states: &[NodeState],
    present_factor: f32,
    weight: f32,
    scratch: &mut RouterScratch,
) -> Result<RouteTree, PnrError> {
    let device = ctx.device;
    // Contention-adaptive heuristic weight: fresh nets search with the full
    // (inadmissible) weight — fast, and slightly sloppy paths are fine while
    // congestion is still being discovered. After `WEIGHT_GRACE` rip-ups the
    // weight walks back by `WEIGHT_SLOPE` per additional rip toward the
    // near-admissible floor, because a net locked in a congestion fight needs
    // the true cheapest detour, not a beeline — sloppy paths there feed the
    // very oscillation PathFinder is trying to price away. Deterministic:
    // rip counts are committed negotiation state, independent of workers.
    const WEIGHT_GRACE: f32 = 4.0;
    const WEIGHT_SLOPE: f32 = 0.25;
    const WEIGHT_FLOOR: f32 = 1.25;
    // The per-net floor never rises above the iteration's base weight, so
    // the late-negotiation global decay (see `route_inner`) can take every
    // net all the way down to the admissible weight.
    let floor = WEIGHT_FLOOR.min(weight);
    let weight =
        (weight - WEIGHT_SLOPE * (f32::from(rip_count) - WEIGHT_GRACE).max(0.0)).max(floor);
    // The same rectangle the scheduler used to admit this net into its
    // chunk, so confined searches provably stay inside the net's reserved
    // region (the per-sink unconfined retry below is the one escape hatch).
    let bounds = search_rect(terminals, rip_count, ctx.bbox_margin, ctx.cols, ctx.rows);
    let net_confined = !bounds.covers_grid(ctx.cols, ctx.rows);
    // `start` is either a fresh source-only tree or the clean subtree a
    // partial rip-up preserved; either way its sinks are re-collected below.
    let mut tree = start;
    scratch.tree_generation += 1;
    let tree_generation = scratch.tree_generation;
    for node in &tree.nodes {
        scratch.in_tree[node.index()] = tree_generation;
    }

    for &(sink_node, sink_cell, sink_pin) in &terminals.sinks {
        if scratch.in_tree[sink_node.index()] == tree_generation {
            tree.sinks.push((sink_node, sink_cell, sink_pin));
            continue;
        }
        let target_x = states[sink_node.index()].tile_x;
        let target_y = states[sink_node.index()].tile_y;
        let mut confined = net_confined;

        let reached = loop {
            scratch.current_generation += 1;
            let generation_id = scratch.current_generation;
            scratch.queue.clear();

            for &node in &tree.nodes {
                let index = node.index();
                let state = states[index];
                if confined && !bounds.contains(state.tile_x, state.tile_y) {
                    continue;
                }
                scratch.search[index] = SearchRec {
                    best_cost: 0.0,
                    generation: generation_id,
                    prev_pip: u32::MAX,
                };
                let distance = u32::from(state.tile_x.abs_diff(target_x))
                    + u32::from(state.tile_y.abs_diff(target_y));
                scratch.queue.push(QueueEntry {
                    estimate: ctx.lookahead.cost_floor(distance) * weight,
                    cost: 0.0,
                    node,
                });
            }

            let sink_index = sink_node.index();
            // Incumbent bound: once the sink has been relaxed to cost `b`,
            // its queue entry has estimate `b` (the heuristic is zero there),
            // so any entry with a larger estimate would pop only after the
            // sink ends the search. Skipping those pushes is therefore
            // result-preserving — it only spares the heap traffic.
            let mut sink_bound = f32::INFINITY;
            let mut reached = false;
            while let Some(entry) = scratch.queue.pop() {
                scratch.nodes_expanded += 1;
                let node = entry.node;
                let rec = scratch.search[node.index()];
                if rec.generation == generation_id && entry.cost > rec.best_cost + f32::EPSILON {
                    continue;
                }
                if node == sink_node {
                    reached = true;
                    break;
                }
                let first = ctx.adj_start[node.index()] as usize;
                let last = ctx.adj_start[node.index() + 1] as usize;
                for edge in &ctx.edges[first..last] {
                    let index = edge.dst as usize;
                    let state = states[index];
                    // Never route through another cell's input pin; only the
                    // target sink pin is enterable.
                    if state.is_in_pin != 0 && index != sink_index {
                        continue;
                    }
                    if confined && !bounds.contains(state.tile_x, state.tile_y) {
                        continue;
                    }
                    let step =
                        state.cost_static * (1.0 + present_factor * f32::from(state.occupancy));
                    let next_cost = entry.cost + step;
                    let rec = &mut scratch.search[index];
                    if rec.generation != generation_id || next_cost + f32::EPSILON < rec.best_cost {
                        let distance = u32::from(state.tile_x.abs_diff(target_x))
                            + u32::from(state.tile_y.abs_diff(target_y));
                        let estimate = next_cost + ctx.lookahead.cost_floor(distance) * weight;
                        if estimate > sink_bound {
                            continue;
                        }
                        *rec = SearchRec {
                            best_cost: next_cost,
                            generation: generation_id,
                            prev_pip: edge.pip,
                        };
                        if index == sink_index {
                            sink_bound = next_cost;
                        }
                        scratch.queue.push(QueueEntry {
                            estimate,
                            cost: next_cost,
                            node: NodeId::from_index(index),
                        });
                    }
                }
            }

            if reached {
                break true;
            }
            if confined {
                // The bounding box was too tight for the congestion at hand;
                // retry this sink over the whole grid. Deterministic: depends
                // only on the same frozen snapshot.
                confined = false;
                continue;
            }
            break false;
        };

        if !reached {
            return Err(PnrError::NoPath {
                net: ctx.netlist.net(terminals.net).name.clone(),
                sink: format!(
                    "pin {sink_pin} of cell `{}`",
                    ctx.netlist.cell(sink_cell).name
                ),
            });
        }

        // Backtrack from the sink until we meet the existing tree.
        let mut node = sink_node;
        let mut new_nodes = Vec::new();
        let mut new_pips = Vec::new();
        loop {
            new_nodes.push(node);
            let pip_raw = scratch.search[node.index()].prev_pip;
            if pip_raw == u32::MAX {
                // Reached a node that was seeded from the existing tree.
                new_nodes.pop();
                break;
            }
            let pip_id = PipId::from_index(pip_raw as usize);
            new_pips.push(pip_id);
            node = device.pip(pip_id).src;
            if scratch.in_tree[node.index()] == tree_generation {
                break;
            }
        }
        for &new_node in &new_nodes {
            scratch.in_tree[new_node.index()] = tree_generation;
        }
        tree.nodes.extend(new_nodes);
        tree.pips.extend(new_pips);
        tree.sinks.push((sink_node, sink_cell, sink_pin));
    }

    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerOptions};
    use tmr_designs::counter;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, Netlist, Placement, HashMap<NetId, RouteTree>) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let routes = route(&device, &netlist, &placement, &RouterOptions::default()).unwrap();
        (device, netlist, placement, routes)
    }

    #[test]
    fn routes_every_cell_to_cell_net() {
        let (_, netlist, _, routes) = routed_counter();
        let expected: usize = netlist
            .nets()
            .filter(|(_, n)| {
                matches!(n.driver, Some(NetDriver::Cell(_)))
                    && n.sinks.iter().any(|s| matches!(s, NetSink::CellPin { .. }))
            })
            .count();
        assert_eq!(routes.len(), expected);
    }

    #[test]
    fn routes_form_connected_trees() {
        let (device, _, _, routes) = routed_counter();
        for tree in routes.values() {
            // Every PIP's source must already be reachable (tree property) and
            // every sink must be in the node set.
            let mut reachable: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
            reachable.insert(tree.source);
            let mut pips_left: Vec<PipId> = tree.pips.clone();
            let mut progress = true;
            while progress {
                progress = false;
                pips_left.retain(|&pip_id| {
                    let pip = device.pip(pip_id);
                    if reachable.contains(&pip.src) {
                        reachable.insert(pip.dst);
                        progress = true;
                        false
                    } else {
                        true
                    }
                });
            }
            assert!(pips_left.is_empty(), "disconnected PIPs in route tree");
            for (sink, _, _) in &tree.sinks {
                assert!(reachable.contains(sink), "sink not reached by tree");
            }
        }
    }

    #[test]
    fn no_node_is_shared_between_nets() {
        let (_, _, _, routes) = routed_counter();
        let mut seen: std::collections::HashMap<NodeId, NetId> = std::collections::HashMap::new();
        for (net, tree) in &routes {
            for &node in &tree.nodes {
                if let Some(other) = seen.insert(node, *net) {
                    assert_eq!(other, *net, "node {node} used by two nets");
                }
            }
        }
    }

    #[test]
    fn telemetry_records_every_iteration_and_convergence() {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let (result, telemetry) =
            route_with_telemetry(&device, &netlist, &placement, &RouterOptions::default());
        assert!(result.is_ok());
        assert!(telemetry.converged());
        assert!(telemetry.iteration_count() >= 1);
        assert!(telemetry.workers >= 1);
        let first = &telemetry.iterations[0];
        assert_eq!((first.iteration, first.ripped_up), (1, 0));
        assert!(first.rerouted > 0, "every net is routed in iteration 1");
        assert!(first.nodes_expanded > 0, "A* expands nodes in iteration 1");
        assert_eq!(telemetry.iterations.last().unwrap().overused_nodes, 0);
        // route() must agree with the telemetry variant it delegates to.
        let direct = route(&device, &netlist, &placement, &RouterOptions::default()).unwrap();
        assert_eq!(direct.len(), result.unwrap().len());
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, _, _, a) = routed_counter();
        let (_, _, _, b) = routed_counter();
        assert_eq!(a.len(), b.len());
        for (net, tree) in &a {
            assert_eq!(tree.pips, b[net].pips);
        }
    }

    #[test]
    fn worker_count_does_not_change_routes() {
        let device = Device::small(6, 6);
        let netlist = techmap(&optimize(&lower(&counter(5)).unwrap())).unwrap();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let reference = route(
            &device,
            &netlist,
            &placement,
            &RouterOptions {
                workers: 1,
                ..RouterOptions::default()
            },
        )
        .unwrap();
        for workers in [2, 3, 8] {
            let parallel = route(
                &device,
                &netlist,
                &placement,
                &RouterOptions {
                    workers,
                    ..RouterOptions::default()
                },
            )
            .unwrap();
            assert_eq!(reference, parallel, "workers={workers} diverged");
        }
    }
}
