//! Negotiated-congestion A* maze routing (PathFinder style).

use crate::routed::RouteTree;
use crate::{Placement, PnrError};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use tmr_arch::{Device, NodeId, PipId, RouteNode};
use tmr_netlist::{NetDriver, NetId, NetSink, Netlist};

/// Router options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// Maximum negotiation iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion penalty factor.
    pub present_factor: f64,
    /// Multiplier applied to the present-congestion factor each iteration.
    pub present_factor_growth: f64,
    /// Historical congestion cost added to every overused node per iteration.
    pub history_increment: f64,
    /// A* heuristic weight (1.0 = admissible, larger = faster but greedier).
    pub astar_weight: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        // The growth factor must stay gentle: with an aggressive schedule
        // (e.g. 1.8 per iteration) the present-congestion penalty explodes
        // after a few dozen iterations, the router degenerates into pure
        // avoidance of any occupied node and negotiation oscillates instead
        // of converging — overuse *increases* with more iterations.
        Self {
            max_iterations: 250,
            present_factor: 0.6,
            present_factor_growth: 1.2,
            history_increment: 1.0,
            astar_weight: 1.25,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    estimate: f32,
    cost: f32,
    node: NodeId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.estimate == other.estimate
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest estimate.
        other
            .estimate
            .total_cmp(&self.estimate)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

/// The terminals of one routable net.
struct NetTerminals {
    net: NetId,
    source: NodeId,
    sinks: Vec<(NodeId, tmr_netlist::CellId, usize)>,
}

/// One negotiation iteration's congestion signals.
///
/// These are the numbers that expose the divergence class fixed in the
/// present-factor schedule (see [`RouterOptions::default`]): a healthy run
/// shows `overused_nodes` trending to zero while `present_factor` grows
/// gently; an oscillating run shows overuse flat or growing as the factor
/// explodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteIteration {
    /// 1-based negotiation iteration number.
    pub iteration: usize,
    /// Nets ripped up (previous tree discarded) this iteration.
    pub ripped_up: usize,
    /// Nets routed (first-time or re-routed) this iteration.
    pub rerouted: usize,
    /// Nodes with more than one occupant after this iteration.
    pub overused_nodes: usize,
    /// Present-congestion penalty factor used during this iteration.
    pub present_factor: f64,
}

/// Per-iteration telemetry of one [`route_with_telemetry`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteTelemetry {
    /// One entry per negotiation iteration, in order.
    pub iterations: Vec<RouteIteration>,
}

impl RouteTelemetry {
    /// Number of negotiation iterations performed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Whether the run ended with zero overused nodes.
    pub fn converged(&self) -> bool {
        self.iterations
            .last()
            .is_some_and(|last| last.overused_nodes == 0)
    }

    /// Total nets ripped up across all iterations.
    pub fn total_rip_ups(&self) -> usize {
        self.iterations.iter().map(|it| it.ripped_up).sum()
    }
}

/// Routes every cell-to-cell net of a placed netlist.
///
/// # Errors
///
/// Returns [`PnrError::NoPath`] if a sink is unreachable from its source and
/// [`PnrError::Unroutable`] if congestion cannot be resolved within the
/// iteration budget.
pub fn route(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
) -> Result<HashMap<NetId, RouteTree>, PnrError> {
    route_with_telemetry(device, netlist, placement, options).0
}

/// [`route`], additionally returning the per-iteration negotiation
/// telemetry — which is populated (and emitted as `route.iteration` trace
/// events when tracing is enabled) even when routing fails, so a diverging
/// run leaves its congestion history behind for inspection.
pub fn route_with_telemetry(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
) -> (Result<HashMap<NetId, RouteTree>, PnrError>, RouteTelemetry) {
    let mut telemetry = RouteTelemetry::default();
    let result = route_inner(device, netlist, placement, options, &mut telemetry);
    (result, telemetry)
}

fn route_inner(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouterOptions,
    telemetry: &mut RouteTelemetry,
) -> Result<HashMap<NetId, RouteTree>, PnrError> {
    let nets = collect_terminals(device, netlist, placement);

    let node_count = device.node_count();
    let mut occupancy = vec![0u16; node_count];
    let mut history = vec![0f32; node_count];
    // A* bookkeeping with generation stamps so the arrays are reused.
    let mut best_cost = vec![f32::INFINITY; node_count];
    let mut generation = vec![0u32; node_count];
    let mut prev_pip: Vec<u32> = vec![u32::MAX; node_count];
    let mut current_generation = 0u32;

    let mut trees: HashMap<NetId, RouteTree> = HashMap::new();
    let mut present_factor = options.present_factor;

    for iteration in 1..=options.max_iterations {
        let mut ripped_up = 0usize;
        let mut rerouted = 0usize;
        for terminals in &nets {
            let needs_reroute = match trees.get(&terminals.net) {
                None => true,
                Some(tree) => tree.nodes.iter().any(|n| occupancy[n.index()] > 1),
            };
            if !needs_reroute {
                continue;
            }
            // Rip up.
            if let Some(old) = trees.remove(&terminals.net) {
                ripped_up += 1;
                for node in &old.nodes {
                    occupancy[node.index()] -= 1;
                }
            }

            let tree = route_net(
                device,
                netlist,
                terminals,
                &occupancy,
                &history,
                present_factor,
                options.astar_weight,
                &mut best_cost,
                &mut generation,
                &mut prev_pip,
                &mut current_generation,
            )?;
            for node in &tree.nodes {
                occupancy[node.index()] += 1;
            }
            trees.insert(terminals.net, tree);
            rerouted += 1;
        }

        let overused: usize = occupancy.iter().filter(|&&o| o > 1).count();
        telemetry.iterations.push(RouteIteration {
            iteration,
            ripped_up,
            rerouted,
            overused_nodes: overused,
            present_factor,
        });
        if tmr_trace::enabled() {
            tmr_trace::event("route.iteration")
                .attr("iteration", iteration)
                .attr("overused", overused)
                .attr("ripped_up", ripped_up)
                .attr("rerouted", rerouted)
                .attr("present_factor", present_factor);
        }
        if overused == 0 {
            return Ok(trees);
        }
        if iteration == options.max_iterations {
            return Err(PnrError::Unroutable {
                overused_nodes: overused,
                iterations: iteration,
            });
        }
        for (node, &occ) in occupancy.iter().enumerate() {
            if occ > 1 {
                history[node] += (options.history_increment * f64::from(occ - 1)) as f32;
            }
        }
        // Cap the penalty so costs stay well inside f32 range; beyond this
        // point only the accumulated history can (and should) break ties.
        present_factor = (present_factor * options.present_factor_growth).min(1e6);
    }
    unreachable!("the loop either returns success or exhausts its iterations");
}

/// Gathers source and sink routing nodes for every net that must be routed:
/// nets driven by a placed cell and read by at least one placed cell.
fn collect_terminals(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
) -> Vec<NetTerminals> {
    let mut nets = Vec::new();
    for (net_id, net) in netlist.nets() {
        let driver = match net.driver {
            Some(NetDriver::Cell(c)) => c,
            _ => continue,
        };
        let sinks: Vec<(NodeId, tmr_netlist::CellId, usize)> = net
            .sinks
            .iter()
            .filter_map(|sink| match sink {
                NetSink::CellPin { cell, pin } => {
                    let site = placement.site(*cell);
                    Some((device.in_pins(site)[*pin], *cell, *pin))
                }
                NetSink::Output(_) => None,
            })
            .collect();
        if sinks.is_empty() {
            continue;
        }
        let source = device.out_pin(placement.site(driver));
        nets.push(NetTerminals {
            net: net_id,
            source,
            sinks,
        });
    }
    // Route high-fanout nets first: they are the hardest to place well.
    nets.sort_by_key(|t| std::cmp::Reverse(t.sinks.len()));
    nets
}

/// Cost of occupying `node` given the current congestion state, assuming the
/// current net would add one more occupant.
fn node_cost(
    device: &Device,
    node: NodeId,
    occupancy: &[u16],
    history: &[f32],
    present_factor: f64,
) -> f32 {
    let base = match device.node(node) {
        RouteNode::Wire { .. } => 1.0f32,
        RouteNode::InPin { .. } | RouteNode::OutPin { .. } => 0.95,
    };
    let over = f64::from(occupancy[node.index()]); // capacity is 1: any existing occupant is overuse
    let present = 1.0 + present_factor * over;
    (base + history[node.index()]) * present as f32
}

#[allow(clippy::too_many_arguments)]
fn route_net(
    device: &Device,
    netlist: &Netlist,
    terminals: &NetTerminals,
    occupancy: &[u16],
    history: &[f32],
    present_factor: f64,
    astar_weight: f64,
    best_cost: &mut [f32],
    generation: &mut [u32],
    prev_pip: &mut [u32],
    current_generation: &mut u32,
) -> Result<RouteTree, PnrError> {
    let mut tree = RouteTree {
        source: terminals.source,
        nodes: vec![terminals.source],
        pips: Vec::new(),
        sinks: Vec::new(),
    };

    // Route the closest sinks first so later sinks can reuse the growing tree.
    let mut sinks = terminals.sinks.clone();
    let source_tile = device.node_tile(terminals.source);
    sinks.sort_by_key(|(node, _, _)| device.node_tile(*node).manhattan(source_tile));

    for (sink_node, sink_cell, sink_pin) in sinks {
        if tree.nodes.contains(&sink_node) {
            tree.sinks.push((sink_node, sink_cell, sink_pin));
            continue;
        }
        *current_generation += 1;
        let generation_id = *current_generation;
        let target_tile = device.node_tile(sink_node);
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();

        for &node in &tree.nodes {
            best_cost[node.index()] = 0.0;
            generation[node.index()] = generation_id;
            prev_pip[node.index()] = u32::MAX;
            let h = device.node_tile(node).manhattan(target_tile) as f32;
            queue.push(QueueEntry {
                estimate: h * astar_weight as f32,
                cost: 0.0,
                node,
            });
        }

        let mut reached = false;
        while let Some(entry) = queue.pop() {
            let node = entry.node;
            if generation[node.index()] == generation_id
                && entry.cost > best_cost[node.index()] + f32::EPSILON
            {
                continue;
            }
            if node == sink_node {
                reached = true;
                break;
            }
            for &pip_id in device.pips_from(node) {
                let pip = device.pip(pip_id);
                let next = pip.dst;
                // Never route through another cell's input pin; only the
                // target sink pin is enterable.
                if device.node(next).is_in_pin() && next != sink_node {
                    continue;
                }
                let step = node_cost(device, next, occupancy, history, present_factor);
                let next_cost = entry.cost + step;
                let index = next.index();
                if generation[index] != generation_id || next_cost + f32::EPSILON < best_cost[index]
                {
                    generation[index] = generation_id;
                    best_cost[index] = next_cost;
                    prev_pip[index] = pip_id.index() as u32;
                    let h = device.node_tile(next).manhattan(target_tile) as f32;
                    queue.push(QueueEntry {
                        estimate: next_cost + h * astar_weight as f32,
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }

        if !reached {
            return Err(PnrError::NoPath {
                net: netlist.net(terminals.net).name.clone(),
                sink: format!("pin {sink_pin} of cell `{}`", netlist.cell(sink_cell).name),
            });
        }

        // Backtrack from the sink until we meet the existing tree.
        let mut node = sink_node;
        let mut new_nodes = Vec::new();
        let mut new_pips = Vec::new();
        loop {
            new_nodes.push(node);
            let pip_raw = prev_pip[node.index()];
            if pip_raw == u32::MAX {
                // Reached a node that was seeded from the existing tree.
                new_nodes.pop();
                break;
            }
            let pip_id = PipId::from_index(pip_raw as usize);
            new_pips.push(pip_id);
            node = device.pip(pip_id).src;
            if tree.nodes.contains(&node) {
                break;
            }
        }
        tree.nodes.extend(new_nodes);
        tree.pips.extend(new_pips);
        tree.sinks.push((sink_node, sink_cell, sink_pin));
    }

    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerOptions};
    use tmr_designs::counter;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, Netlist, Placement, HashMap<NetId, RouteTree>) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let routes = route(&device, &netlist, &placement, &RouterOptions::default()).unwrap();
        (device, netlist, placement, routes)
    }

    #[test]
    fn routes_every_cell_to_cell_net() {
        let (_, netlist, _, routes) = routed_counter();
        let expected: usize = netlist
            .nets()
            .filter(|(_, n)| {
                matches!(n.driver, Some(NetDriver::Cell(_)))
                    && n.sinks.iter().any(|s| matches!(s, NetSink::CellPin { .. }))
            })
            .count();
        assert_eq!(routes.len(), expected);
    }

    #[test]
    fn routes_form_connected_trees() {
        let (device, _, _, routes) = routed_counter();
        for tree in routes.values() {
            // Every PIP's source must already be reachable (tree property) and
            // every sink must be in the node set.
            let mut reachable: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
            reachable.insert(tree.source);
            let mut pips_left: Vec<PipId> = tree.pips.clone();
            let mut progress = true;
            while progress {
                progress = false;
                pips_left.retain(|&pip_id| {
                    let pip = device.pip(pip_id);
                    if reachable.contains(&pip.src) {
                        reachable.insert(pip.dst);
                        progress = true;
                        false
                    } else {
                        true
                    }
                });
            }
            assert!(pips_left.is_empty(), "disconnected PIPs in route tree");
            for (sink, _, _) in &tree.sinks {
                assert!(reachable.contains(sink), "sink not reached by tree");
            }
        }
    }

    #[test]
    fn no_node_is_shared_between_nets() {
        let (_, _, _, routes) = routed_counter();
        let mut seen: std::collections::HashMap<NodeId, NetId> = std::collections::HashMap::new();
        for (net, tree) in &routes {
            for &node in &tree.nodes {
                if let Some(other) = seen.insert(node, *net) {
                    assert_eq!(other, *net, "node {node} used by two nets");
                }
            }
        }
    }

    #[test]
    fn telemetry_records_every_iteration_and_convergence() {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let (result, telemetry) =
            route_with_telemetry(&device, &netlist, &placement, &RouterOptions::default());
        assert!(result.is_ok());
        assert!(telemetry.converged());
        assert!(telemetry.iteration_count() >= 1);
        let first = &telemetry.iterations[0];
        assert_eq!((first.iteration, first.ripped_up), (1, 0));
        assert!(first.rerouted > 0, "every net is routed in iteration 1");
        assert_eq!(telemetry.iterations.last().unwrap().overused_nodes, 0);
        // route() must agree with the telemetry variant it delegates to.
        let direct = route(&device, &netlist, &placement, &RouterOptions::default()).unwrap();
        assert_eq!(direct.len(), result.unwrap().len());
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, _, _, a) = routed_counter();
        let (_, _, _, b) = routed_counter();
        assert_eq!(a.len(), b.len());
        for (net, tree) in &a {
            assert_eq!(tree.pips, b[net].pips);
        }
    }
}
