//! # tmr-pnr
//!
//! Place-and-route for technology-mapped netlists onto `tmr-arch` devices,
//! producing a fully configured bitstream plus the net → routing-resource
//! database that the fault-injection framework (`tmr-faultsim`) relies on.
//!
//! The flow is the classical academic one:
//!
//! 1. [`place`] assigns every LUT/FF/IOB cell to a compatible site using a
//!    wirelength-driven simulated-annealing placer (seeded and deterministic).
//! 2. [`route`] connects every net with a negotiated-congestion (PathFinder
//!    style) A* maze router over the device's routing graph; every routing
//!    node has capacity one, and congestion is resolved across iterations
//!    through present- and historical-cost penalties.
//! 3. [`place_and_route`] turns the placed-and-routed design into
//!    configuration bits: one bit per enabled PIP, sixteen truth-table bits
//!    per used LUT, one initialisation bit per used flip-flop.
//!
//! The output [`RoutedDesign`] also exposes which routing node and PIP belongs
//! to which logical net — the information the paper's fault classifier uses to
//! decide whether a flipped routing bit creates an open, a bridge, an antenna
//! or a conflict, and whether the nets involved belong to distinct TMR
//! domains.
//!
//! ## Example
//!
//! ```
//! use tmr_arch::Device;
//! use tmr_netlist::{CellKind, Netlist};
//! use tmr_pnr::place_and_route;
//!
//! // A trivial mapped netlist: y = LUT2(a, b), registered.
//! let mut nl = Netlist::new("tiny");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let a_f = nl.add_net("a_f");
//! let b_f = nl.add_net("b_f");
//! let x = nl.add_net("x");
//! let q = nl.add_net("q");
//! let y = nl.add_net("y");
//! nl.add_cell("ib_a", CellKind::Ibuf, vec![a], a_f).unwrap();
//! nl.add_cell("ib_b", CellKind::Ibuf, vec![b], b_f).unwrap();
//! nl.add_cell("lut", CellKind::Lut { k: 2, init: 0b1000 }, vec![a_f, b_f], x).unwrap();
//! nl.add_cell("ff", CellKind::Dff { init: false }, vec![x], q).unwrap();
//! nl.add_cell("ob", CellKind::Obuf, vec![q], y).unwrap();
//! nl.add_output("y", y);
//!
//! let device = Device::small(4, 4);
//! let routed = place_and_route(&device, &nl, 1).unwrap();
//! assert!(routed.bitstream().count_ones() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod lookahead;
mod place;
mod route;
mod routed;

pub use error::PnrError;
pub use lookahead::Lookahead;
pub use place::{place, placement_wirelength, Placement, PlacerOptions};
pub use route::{
    resolved_workers, route, route_with_telemetry, RouteIteration, RouteTelemetry, RouterOptions,
};
pub use routed::{place_and_route, site_usage, BitReport, RouteTree, RoutedDesign};
