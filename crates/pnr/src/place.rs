//! Wirelength-driven simulated-annealing placement.

use crate::PnrError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tmr_arch::{Device, SiteId, SiteKind};
use tmr_netlist::{CellId, CellKind, NetDriver, NetId, NetSink, Netlist};

/// Placement options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// RNG seed; placements are deterministic for a given seed.
    pub seed: u64,
    /// Annealing moves attempted per movable cell.
    pub moves_per_cell: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            moves_per_cell: 24,
        }
    }
}

/// A complete placement: every cell of the netlist is assigned to exactly one
/// compatible device site.
#[derive(Debug, Clone)]
pub struct Placement {
    site_of_cell: Vec<SiteId>,
    cell_at_site: HashMap<SiteId, CellId>,
    wirelength: u64,
}

impl Placement {
    /// Rebuilds a placement from the per-cell site assignment and the
    /// recorded wirelength — the inverse of iterating [`Placement::iter`],
    /// used by the `tmr-store` codec. The site-occupancy map is rebuilt from
    /// the assignment.
    pub fn from_parts(site_of_cell: Vec<SiteId>, wirelength: u64) -> Self {
        let cell_at_site = site_of_cell
            .iter()
            .enumerate()
            .map(|(i, &site)| (site, CellId::from_index(i)))
            .collect();
        Self {
            site_of_cell,
            cell_at_site,
            wirelength,
        }
    }

    /// The site a cell is placed on.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range for the placed netlist.
    pub fn site(&self, cell: CellId) -> SiteId {
        self.site_of_cell[cell.index()]
    }

    /// The cell placed on a site, if any.
    pub fn cell_at(&self, site: SiteId) -> Option<CellId> {
        self.cell_at_site.get(&site).copied()
    }

    /// Iterates over (cell, site) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, SiteId)> + '_ {
        self.site_of_cell
            .iter()
            .enumerate()
            .map(|(i, &s)| (CellId::from_index(i), s))
    }

    /// Total estimated wirelength (sum of half-perimeter bounding boxes).
    pub fn wirelength(&self) -> u64 {
        self.wirelength
    }
}

/// Returns the site kind a cell requires, or `None` if the cell is not a
/// mapped primitive.
pub(crate) fn required_site_kind(kind: CellKind) -> Option<SiteKind> {
    match kind {
        CellKind::Lut { .. } | CellKind::Gnd | CellKind::Vcc => Some(SiteKind::Lut),
        CellKind::Dff { .. } => Some(SiteKind::Ff),
        CellKind::Ibuf | CellKind::Obuf => Some(SiteKind::Iob),
        _ => None,
    }
}

/// Places a technology-mapped netlist onto a device.
///
/// # Errors
///
/// Returns [`PnrError::UnplaceableCell`] if the netlist contains unmapped
/// gates and [`PnrError::NotEnoughSites`] if the device is too small.
pub fn place(
    device: &Device,
    netlist: &Netlist,
    options: &PlacerOptions,
) -> Result<Placement, PnrError> {
    // Partition cells by required site kind.
    let mut cells_by_kind: HashMap<SiteKind, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.cells() {
        let kind = required_site_kind(cell.kind).ok_or_else(|| PnrError::UnplaceableCell {
            cell: cell.name.clone(),
            kind: cell.kind.to_string(),
        })?;
        cells_by_kind.entry(kind).or_default().push(id);
    }

    for (&kind, cells) in &cells_by_kind {
        let available = device.sites_of_kind(kind).len();
        if cells.len() > available {
            return Err(PnrError::NotEnoughSites {
                kind: kind.to_string(),
                needed: cells.len(),
                available,
            });
        }
    }

    // Initial placement: netlist order onto sites in device order. Cells
    // created together by the lowering pass (e.g. the bits of one adder) are
    // adjacent in the netlist, so this is already a reasonable start.
    let mut site_of_cell = vec![SiteId::from_index(0); netlist.cell_count()];
    let mut cell_at_site: HashMap<SiteId, CellId> = HashMap::new();
    for (kind, cells) in &cells_by_kind {
        let pool = device.sites_of_kind(*kind);
        for (cell, &site) in cells.iter().zip(pool.iter()) {
            site_of_cell[cell.index()] = site;
            cell_at_site.insert(site, *cell);
        }
    }

    // Nets considered for wirelength: driven by a cell, read by at least one
    // cell (I/O pad nets contribute nothing the placer can optimise).
    let routable_nets: Vec<NetId> = netlist
        .nets()
        .filter(|(_, net)| {
            matches!(net.driver, Some(NetDriver::Cell(_)))
                && net
                    .sinks
                    .iter()
                    .any(|s| matches!(s, NetSink::CellPin { .. }))
        })
        .map(|(id, _)| id)
        .collect();

    // Per-cell list of incident routable nets.
    let mut nets_of_cell: Vec<Vec<NetId>> = vec![Vec::new(); netlist.cell_count()];
    for &net_id in &routable_nets {
        let net = netlist.net(net_id);
        if let Some(NetDriver::Cell(c)) = net.driver {
            nets_of_cell[c.index()].push(net_id);
        }
        for sink in &net.sinks {
            if let NetSink::CellPin { cell, .. } = sink {
                if nets_of_cell[cell.index()].last() != Some(&net_id) {
                    nets_of_cell[cell.index()].push(net_id);
                }
            }
        }
    }

    let hpwl = |net_id: NetId, site_of_cell: &[SiteId]| -> u64 {
        let net = netlist.net(net_id);
        let mut min_x = u16::MAX;
        let mut max_x = 0u16;
        let mut min_y = u16::MAX;
        let mut max_y = 0u16;
        let mut update = |cell: CellId| {
            let tile = device.site(site_of_cell[cell.index()]).tile;
            min_x = min_x.min(tile.x);
            max_x = max_x.max(tile.x);
            min_y = min_y.min(tile.y);
            max_y = max_y.max(tile.y);
        };
        if let Some(NetDriver::Cell(c)) = net.driver {
            update(c);
        }
        for sink in &net.sinks {
            if let NetSink::CellPin { cell, .. } = sink {
                update(*cell);
            }
        }
        if min_x == u16::MAX {
            return 0;
        }
        u64::from(max_x - min_x) + u64::from(max_y - min_y)
    };

    let mut total_cost: u64 = routable_nets.iter().map(|&n| hpwl(n, &site_of_cell)).sum();

    // Simulated annealing.
    let movable: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let total_moves = options.moves_per_cell * movable.len().max(1);
    let mut temperature = (total_cost as f64 / routable_nets.len().max(1) as f64).max(1.0);
    let temperature_steps = 64usize;
    let moves_per_step = (total_moves / temperature_steps).max(1);
    let alpha = 0.92f64;

    for _step in 0..temperature_steps {
        for _ in 0..moves_per_step {
            let cell = movable[rng.gen_range(0..movable.len())];
            let kind = required_site_kind(netlist.cell(cell).kind).expect("checked above");
            let pool = device.sites_of_kind(kind);
            let target = pool[rng.gen_range(0..pool.len())];
            let current = site_of_cell[cell.index()];
            if target == current {
                continue;
            }
            let occupant = cell_at_site.get(&target).copied();

            // Affected nets: union of both cells' incident nets.
            let mut affected: Vec<NetId> = nets_of_cell[cell.index()].clone();
            if let Some(other) = occupant {
                affected.extend(nets_of_cell[other.index()].iter().copied());
            }
            affected.sort_unstable();
            affected.dedup();

            let before: u64 = affected.iter().map(|&n| hpwl(n, &site_of_cell)).sum();

            // Apply tentatively.
            site_of_cell[cell.index()] = target;
            if let Some(other) = occupant {
                site_of_cell[other.index()] = current;
            }
            let after: u64 = affected.iter().map(|&n| hpwl(n, &site_of_cell)).sum();
            let delta = after as i64 - before as i64;

            let accept = delta <= 0 || {
                let p = (-(delta as f64) / temperature).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                cell_at_site.insert(target, cell);
                if let Some(other) = occupant {
                    cell_at_site.insert(current, other);
                } else {
                    cell_at_site.remove(&current);
                }
                total_cost = (total_cost as i64 + delta) as u64;
            } else {
                // Revert.
                site_of_cell[cell.index()] = current;
                if let Some(other) = occupant {
                    site_of_cell[other.index()] = target;
                }
            }
        }
        temperature *= alpha;
    }

    Ok(Placement {
        site_of_cell,
        cell_at_site,
        wirelength: total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tmr_designs::counter;
    use tmr_synth::{lower, optimize, techmap};

    fn mapped_counter() -> Netlist {
        techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap()
    }

    #[test]
    fn places_every_cell_on_a_unique_compatible_site() {
        let device = Device::small(5, 5);
        let netlist = mapped_counter();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let mut used: HashSet<SiteId> = HashSet::new();
        for (cell_id, cell) in netlist.cells() {
            let site = placement.site(cell_id);
            assert!(used.insert(site), "site {site} used twice");
            assert_eq!(
                device.site(site).kind,
                required_site_kind(cell.kind).unwrap(),
                "cell {} placed on wrong site kind",
                cell.name
            );
            assert_eq!(placement.cell_at(site), Some(cell_id));
        }
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let device = Device::small(5, 5);
        let netlist = mapped_counter();
        let a = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let b = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        assert_eq!(a.wirelength(), b.wirelength());
    }

    #[test]
    fn rejects_unmapped_netlists() {
        let device = Device::small(3, 3);
        let mut nl = Netlist::new("raw");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u", tmr_netlist::CellKind::And2, vec![a, b], y)
            .unwrap();
        nl.add_output("y", y);
        let err = place(&device, &nl, &PlacerOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::UnplaceableCell { .. }));
    }

    #[test]
    fn rejects_designs_larger_than_the_device() {
        let device = Device::small(2, 2);
        let fir = tmr_designs::FirFilter::paper_filter().to_design();
        let netlist = techmap(&optimize(&lower(&fir).unwrap())).unwrap();
        let err = place(&device, &netlist, &PlacerOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::NotEnoughSites { .. }));
    }
}
