//! Wirelength-driven simulated-annealing placement.
//!
//! The annealer's cost function is the classic half-perimeter wirelength
//! (HPWL), maintained *incrementally*: every routable net carries a
//! [`NetBox`] — its bounding box plus the number of member pins sitting on
//! each of the four boundaries — so a move only touches the boxes of the
//! nets incident to the swapped cells. A boundary whose pin count drops to
//! zero forces a rescan of that net's members; everything else is O(1) per
//! incident net. All deltas are exact integers, so the accept/reject
//! decisions (and therefore the RNG stream and the final placement) are
//! identical to a from-scratch cost evaluation — pinned per move by a
//! `debug_assertions` cross-check against [`placement_wirelength`]'s full
//! recompute.

use crate::PnrError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tmr_arch::{Device, SiteId, SiteKind, TileCoord};
use tmr_netlist::{CellId, CellKind, NetDriver, NetId, NetSink, Netlist};

/// Placement options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// RNG seed; placements are deterministic for a given seed.
    pub seed: u64,
    /// Annealing moves attempted per movable cell.
    pub moves_per_cell: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            moves_per_cell: 24,
        }
    }
}

/// A complete placement: every cell of the netlist is assigned to exactly one
/// compatible device site.
#[derive(Debug, Clone)]
pub struct Placement {
    site_of_cell: Vec<SiteId>,
    cell_at_site: HashMap<SiteId, CellId>,
    wirelength: u64,
}

impl Placement {
    /// Rebuilds a placement from the per-cell site assignment and the
    /// recorded wirelength — the inverse of iterating [`Placement::iter`],
    /// used by the `tmr-store` codec. The site-occupancy map is rebuilt from
    /// the assignment.
    pub fn from_parts(site_of_cell: Vec<SiteId>, wirelength: u64) -> Self {
        let cell_at_site = site_of_cell
            .iter()
            .enumerate()
            .map(|(i, &site)| (site, CellId::from_index(i)))
            .collect();
        Self {
            site_of_cell,
            cell_at_site,
            wirelength,
        }
    }

    /// The site a cell is placed on.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range for the placed netlist.
    pub fn site(&self, cell: CellId) -> SiteId {
        self.site_of_cell[cell.index()]
    }

    /// The cell placed on a site, if any.
    pub fn cell_at(&self, site: SiteId) -> Option<CellId> {
        self.cell_at_site.get(&site).copied()
    }

    /// Iterates over (cell, site) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, SiteId)> + '_ {
        self.site_of_cell
            .iter()
            .enumerate()
            .map(|(i, &s)| (CellId::from_index(i), s))
    }

    /// Total estimated wirelength (sum of half-perimeter bounding boxes).
    pub fn wirelength(&self) -> u64 {
        self.wirelength
    }
}

/// Returns the site kind a cell requires, or `None` if the cell is not a
/// mapped primitive.
pub(crate) fn required_site_kind(kind: CellKind) -> Option<SiteKind> {
    match kind {
        CellKind::Lut { .. } | CellKind::Gnd | CellKind::Vcc => Some(SiteKind::Lut),
        CellKind::Dff { .. } => Some(SiteKind::Ff),
        CellKind::Ibuf | CellKind::Obuf => Some(SiteKind::Iob),
        _ => None,
    }
}

/// Nets that contribute to the wirelength cost: driven by a cell, read by at
/// least one cell (I/O pad nets contribute nothing the placer can optimise).
fn routable_nets(netlist: &Netlist) -> Vec<NetId> {
    netlist
        .nets()
        .filter(|(_, net)| {
            matches!(net.driver, Some(NetDriver::Cell(_)))
                && net
                    .sinks
                    .iter()
                    .any(|s| matches!(s, NetSink::CellPin { .. }))
        })
        .map(|(id, _)| id)
        .collect()
}

/// Full-recompute half-perimeter wirelength of a placement — the reference
/// the incremental annealer cost is asserted against, and the oracle the
/// differential test suite uses.
pub fn placement_wirelength(device: &Device, netlist: &Netlist, placement: &Placement) -> u64 {
    routable_nets(netlist)
        .iter()
        .map(|&net_id| net_hpwl(device, netlist, net_id, |cell| placement.site(cell)))
        .sum()
}

/// From-scratch HPWL of one net under an arbitrary cell → site assignment.
fn net_hpwl(
    device: &Device,
    netlist: &Netlist,
    net_id: NetId,
    site_of: impl Fn(CellId) -> SiteId,
) -> u64 {
    let net = netlist.net(net_id);
    let mut min_x = u16::MAX;
    let mut max_x = 0u16;
    let mut min_y = u16::MAX;
    let mut max_y = 0u16;
    let mut update = |cell: CellId| {
        let tile = device.site(site_of(cell)).tile;
        min_x = min_x.min(tile.x);
        max_x = max_x.max(tile.x);
        min_y = min_y.min(tile.y);
        max_y = max_y.max(tile.y);
    };
    if let Some(NetDriver::Cell(c)) = net.driver {
        update(c);
    }
    for sink in &net.sinks {
        if let NetSink::CellPin { cell, .. } = sink {
            update(*cell);
        }
    }
    if min_x == u16::MAX {
        return 0;
    }
    u64::from(max_x - min_x) + u64::from(max_y - min_y)
}

/// One net's incrementally maintained bounding box: the box itself plus how
/// many member pins sit on each boundary, so boundary-preserving moves never
/// rescan the net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NetBox {
    min_x: u16,
    max_x: u16,
    min_y: u16,
    max_y: u16,
    on_min_x: u32,
    on_max_x: u32,
    on_min_y: u32,
    on_max_y: u32,
}

impl NetBox {
    fn empty() -> Self {
        Self {
            min_x: u16::MAX,
            max_x: 0,
            min_y: u16::MAX,
            max_y: 0,
            on_min_x: 0,
            on_max_x: 0,
            on_min_y: 0,
            on_max_y: 0,
        }
    }

    fn hpwl(&self) -> u64 {
        u64::from(self.max_x - self.min_x) + u64::from(self.max_y - self.min_y)
    }

    /// Adds one member pin at `tile`, extending the box if needed.
    fn add(&mut self, tile: TileCoord) {
        if tile.x < self.min_x {
            self.min_x = tile.x;
            self.on_min_x = 1;
        } else if tile.x == self.min_x {
            self.on_min_x += 1;
        }
        if tile.x > self.max_x {
            self.max_x = tile.x;
            self.on_max_x = 1;
        } else if tile.x == self.max_x {
            self.on_max_x += 1;
        }
        if tile.y < self.min_y {
            self.min_y = tile.y;
            self.on_min_y = 1;
        } else if tile.y == self.min_y {
            self.on_min_y += 1;
        }
        if tile.y > self.max_y {
            self.max_y = tile.y;
            self.on_max_y = 1;
        } else if tile.y == self.max_y {
            self.on_max_y += 1;
        }
    }

    /// Removes one member pin at `tile`. Returns `true` when a boundary lost
    /// its last pin — the box may shrink and the caller must rescan.
    fn remove(&mut self, tile: TileCoord) -> bool {
        if tile.x == self.min_x {
            if self.on_min_x == 1 {
                return true;
            }
            self.on_min_x -= 1;
        }
        if tile.x == self.max_x {
            if self.on_max_x == 1 {
                return true;
            }
            self.on_max_x -= 1;
        }
        if tile.y == self.min_y {
            if self.on_min_y == 1 {
                return true;
            }
            self.on_min_y -= 1;
        }
        if tile.y == self.max_y {
            if self.on_max_y == 1 {
                return true;
            }
            self.on_max_y -= 1;
        }
        false
    }
}

/// Rescans a net's members and rebuilds its [`NetBox`] from scratch.
fn compute_box(device: &Device, members: &[CellId], site_of_cell: &[SiteId]) -> NetBox {
    let mut net_box = NetBox::empty();
    for &cell in members {
        net_box.add(device.site(site_of_cell[cell.index()]).tile);
    }
    net_box
}

/// Places a technology-mapped netlist onto a device.
///
/// # Errors
///
/// Returns [`PnrError::UnplaceableCell`] if the netlist contains unmapped
/// gates and [`PnrError::NotEnoughSites`] if the device is too small.
pub fn place(
    device: &Device,
    netlist: &Netlist,
    options: &PlacerOptions,
) -> Result<Placement, PnrError> {
    // Partition cells by required site kind.
    let mut cells_by_kind: HashMap<SiteKind, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.cells() {
        let kind = required_site_kind(cell.kind).ok_or_else(|| PnrError::UnplaceableCell {
            cell: cell.name.clone(),
            kind: cell.kind.to_string(),
        })?;
        cells_by_kind.entry(kind).or_default().push(id);
    }

    for (&kind, cells) in &cells_by_kind {
        let available = device.sites_of_kind(kind).len();
        if cells.len() > available {
            return Err(PnrError::NotEnoughSites {
                kind: kind.to_string(),
                needed: cells.len(),
                available,
            });
        }
    }

    // Initial placement: netlist order onto sites in device order. Cells
    // created together by the lowering pass (e.g. the bits of one adder) are
    // adjacent in the netlist, so this is already a reasonable start.
    let mut site_of_cell = vec![SiteId::from_index(0); netlist.cell_count()];
    let mut cell_at_site: HashMap<SiteId, CellId> = HashMap::new();
    for (kind, cells) in &cells_by_kind {
        let pool = device.sites_of_kind(*kind);
        for (cell, &site) in cells.iter().zip(pool.iter()) {
            site_of_cell[cell.index()] = site;
            cell_at_site.insert(site, *cell);
        }
    }

    let cost_nets = routable_nets(netlist);

    // Per-net member pins (driver plus every cell-pin sink occurrence — the
    // exact multiset the HPWL definition scans) and the per-cell incidence
    // lists, both indexed by position in `cost_nets`.
    let mut members: Vec<Vec<CellId>> = Vec::with_capacity(cost_nets.len());
    let mut nets_of_cell: Vec<Vec<u32>> = vec![Vec::new(); netlist.cell_count()];
    for (index, &net_id) in cost_nets.iter().enumerate() {
        let net = netlist.net(net_id);
        let mut pins = Vec::new();
        if let Some(NetDriver::Cell(c)) = net.driver {
            pins.push(c);
            nets_of_cell[c.index()].push(index as u32);
        }
        for sink in &net.sinks {
            if let NetSink::CellPin { cell, .. } = sink {
                pins.push(*cell);
                if nets_of_cell[cell.index()].last() != Some(&(index as u32)) {
                    nets_of_cell[cell.index()].push(index as u32);
                }
            }
        }
        members.push(pins);
    }

    let mut boxes: Vec<NetBox> = members
        .iter()
        .map(|pins| compute_box(device, pins, &site_of_cell))
        .collect();
    let mut total_cost: u64 = boxes.iter().map(NetBox::hpwl).sum();

    // Simulated annealing.
    let movable: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let total_moves = options.moves_per_cell * movable.len().max(1);
    let mut temperature = (total_cost as f64 / cost_nets.len().max(1) as f64).max(1.0);
    let temperature_steps = 64usize;
    let moves_per_step = (total_moves / temperature_steps).max(1);
    let alpha = 0.92f64;

    // Reused per-move buffers: no allocation on the annealing hot path.
    let mut affected: Vec<u32> = Vec::new();
    let mut saved: Vec<(u32, NetBox)> = Vec::new();

    for _step in 0..temperature_steps {
        for _ in 0..moves_per_step {
            let cell = movable[rng.gen_range(0..movable.len())];
            let kind = required_site_kind(netlist.cell(cell).kind).expect("checked above");
            let pool = device.sites_of_kind(kind);
            let target = pool[rng.gen_range(0..pool.len())];
            let current = site_of_cell[cell.index()];
            if target == current {
                continue;
            }
            let occupant = cell_at_site.get(&target).copied();
            let current_tile = device.site(current).tile;
            let target_tile = device.site(target).tile;

            if current_tile == target_tile {
                // Swapping within one tile never changes any bounding box:
                // delta is zero, the move is always accepted, and no RNG is
                // consumed — exactly as a full cost evaluation would decide.
                site_of_cell[cell.index()] = target;
                cell_at_site.insert(target, cell);
                if let Some(other) = occupant {
                    site_of_cell[other.index()] = current;
                    cell_at_site.insert(current, other);
                } else {
                    cell_at_site.remove(&current);
                }
                continue;
            }

            // Affected nets: union of both cells' incident nets.
            affected.clear();
            affected.extend_from_slice(&nets_of_cell[cell.index()]);
            if let Some(other) = occupant {
                affected.extend_from_slice(&nets_of_cell[other.index()]);
            }
            affected.sort_unstable();
            affected.dedup();

            // Apply tentatively, then update each affected box
            // incrementally: remove the moved pin occurrences' old tiles,
            // add the new ones, rescan only when a boundary empties.
            site_of_cell[cell.index()] = target;
            if let Some(other) = occupant {
                site_of_cell[other.index()] = current;
            }

            saved.clear();
            let mut delta = 0i64;
            for &net in &affected {
                let index = net as usize;
                let old_box = boxes[index];
                saved.push((net, old_box));
                let mut net_box = old_box;
                let mut rescan = false;
                for &pin in &members[index] {
                    let (from, to) = if pin == cell {
                        (current_tile, target_tile)
                    } else if occupant == Some(pin) {
                        (target_tile, current_tile)
                    } else {
                        continue;
                    };
                    if net_box.remove(from) {
                        rescan = true;
                        break;
                    }
                    net_box.add(to);
                }
                if rescan {
                    net_box = compute_box(device, &members[index], &site_of_cell);
                }
                debug_assert_eq!(
                    net_box,
                    compute_box(device, &members[index], &site_of_cell),
                    "incremental NetBox diverged from full recompute"
                );
                delta += net_box.hpwl() as i64 - old_box.hpwl() as i64;
                boxes[index] = net_box;
            }

            let accept = delta <= 0 || {
                let p = (-(delta as f64) / temperature).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                cell_at_site.insert(target, cell);
                if let Some(other) = occupant {
                    cell_at_site.insert(current, other);
                } else {
                    cell_at_site.remove(&current);
                }
                total_cost = (total_cost as i64 + delta) as u64;
            } else {
                // Revert the assignment and the touched boxes.
                site_of_cell[cell.index()] = current;
                if let Some(other) = occupant {
                    site_of_cell[other.index()] = target;
                }
                for &(net, net_box) in &saved {
                    boxes[net as usize] = net_box;
                }
            }
        }
        temperature *= alpha;
    }

    debug_assert_eq!(
        total_cost,
        boxes.iter().map(NetBox::hpwl).sum::<u64>(),
        "incremental total cost diverged from the maintained boxes"
    );

    Ok(Placement {
        site_of_cell,
        cell_at_site,
        wirelength: total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tmr_designs::counter;
    use tmr_synth::{lower, optimize, techmap};

    fn mapped_counter() -> Netlist {
        techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap()
    }

    #[test]
    fn places_every_cell_on_a_unique_compatible_site() {
        let device = Device::small(5, 5);
        let netlist = mapped_counter();
        let placement = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let mut used: HashSet<SiteId> = HashSet::new();
        for (cell_id, cell) in netlist.cells() {
            let site = placement.site(cell_id);
            assert!(used.insert(site), "site {site} used twice");
            assert_eq!(
                device.site(site).kind,
                required_site_kind(cell.kind).unwrap(),
                "cell {} placed on wrong site kind",
                cell.name
            );
            assert_eq!(placement.cell_at(site), Some(cell_id));
        }
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let device = Device::small(5, 5);
        let netlist = mapped_counter();
        let a = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        let b = place(&device, &netlist, &PlacerOptions::default()).unwrap();
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        assert_eq!(a.wirelength(), b.wirelength());
    }

    #[test]
    fn incremental_cost_matches_full_recompute() {
        for (cols, rows, seed) in [(5, 5, 1), (6, 6, 7), (8, 8, 42)] {
            let device = Device::small(cols, rows);
            let netlist = mapped_counter();
            let placement = place(
                &device,
                &netlist,
                &PlacerOptions {
                    seed,
                    ..PlacerOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                placement.wirelength(),
                placement_wirelength(&device, &netlist, &placement),
                "incremental wirelength diverged (seed {seed})"
            );
        }
    }

    #[test]
    fn rejects_unmapped_netlists() {
        let device = Device::small(3, 3);
        let mut nl = Netlist::new("raw");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u", tmr_netlist::CellKind::And2, vec![a, b], y)
            .unwrap();
        nl.add_output("y", y);
        let err = place(&device, &nl, &PlacerOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::UnplaceableCell { .. }));
    }

    #[test]
    fn rejects_designs_larger_than_the_device() {
        let device = Device::small(2, 2);
        let fir = tmr_designs::FirFilter::paper_filter().to_design();
        let netlist = techmap(&optimize(&lower(&fir).unwrap())).unwrap();
        let err = place(&device, &netlist, &PlacerOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::NotEnoughSites { .. }));
    }
}
