//! Error type for place-and-route.

use std::error::Error;
use std::fmt;

/// Errors produced by placement or routing.
#[derive(Debug, Clone, PartialEq)]
pub enum PnrError {
    /// The device does not provide enough sites of a given kind.
    NotEnoughSites {
        /// Site kind label ("LUT", "FF", "IOB").
        kind: String,
        /// Cells that need a site of this kind.
        needed: usize,
        /// Sites available on the device.
        available: usize,
    },
    /// A cell kind cannot be placed (not a mapped primitive).
    UnplaceableCell {
        /// Offending cell name.
        cell: String,
        /// Its kind, for diagnostics.
        kind: String,
    },
    /// The router could not resolve congestion within its iteration budget.
    Unroutable {
        /// Number of routing nodes still overused after the final iteration.
        overused_nodes: usize,
        /// Iterations performed.
        iterations: usize,
    },
    /// A net's sink could not be reached from its source at all (disconnected
    /// routing graph — indicates an architecture modelling problem).
    NoPath {
        /// The net being routed.
        net: String,
        /// The unreachable sink description.
        sink: String,
    },
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::NotEnoughSites {
                kind,
                needed,
                available,
            } => write!(
                f,
                "design needs {needed} {kind} sites but the device provides only {available}"
            ),
            PnrError::UnplaceableCell { cell, kind } => {
                write!(f, "cell `{cell}` of kind {kind} cannot be placed on this device")
            }
            PnrError::Unroutable {
                overused_nodes,
                iterations,
            } => write!(
                f,
                "routing did not converge: {overused_nodes} node(s) still overused after {iterations} iteration(s)"
            ),
            PnrError::NoPath { net, sink } => {
                write!(f, "no path exists from the source of net `{net}` to sink {sink}")
            }
        }
    }
}

impl Error for PnrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let err = PnrError::NotEnoughSites {
            kind: "LUT".into(),
            needed: 100,
            available: 64,
        };
        assert!(err.to_string().contains("100"));
        assert!(err.to_string().contains("64"));
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<PnrError>();
    }
}
