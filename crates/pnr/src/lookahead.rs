//! Admissible distance lookahead for the A* router.
//!
//! The router's heuristic must never overestimate the remaining cost of
//! reaching a sink, or the directed search stops being best-first and the
//! negotiation outcome starts depending on expansion order. This module
//! precomputes, once per [`Device`] geometry, a table mapping *tile Manhattan
//! distance* to a provable lower bound on the cost of the cheapest node
//! sequence that can still lie ahead:
//!
//! * every PIP moves at most one tile (the switchbox connects cardinal
//!   neighbours only), so a node `d` tiles away needs at least `d` more
//!   distance-reducing hops;
//! * intermediate hops land on wires, each costing at least the cheapest
//!   wire base cost;
//! * the final hop enters the sink pin, costing at least the cheapest pin
//!   base cost — and if the input muxes accept wires from a neighbouring
//!   tile (the architecture's "long input" PIPs), that last hop already
//!   covers one tile of distance, saving one wire from the bound.
//!
//! The table depends only on [`DeviceParams`] (device construction is
//! deterministic), so it is cached process-wide and shared by every router
//! instance — including the scoped worker threads of the parallel
//! negotiation, which clone one `Arc` each.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tmr_arch::{Device, DeviceParams, RouteNode};

use crate::route::base_cost;

/// Per-device admissible cost floors indexed by tile Manhattan distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Lookahead {
    table: Vec<f32>,
}

impl Lookahead {
    /// Computes the lookahead table for `device` without consulting the
    /// process-wide cache (used by the cache itself and by tests).
    pub fn compute(device: &Device) -> Self {
        let mut min_wire = f32::INFINITY;
        let mut min_pin = f32::INFINITY;
        for index in 0..device.node_count() {
            let node = device.node(tmr_arch::NodeId::from_index(index));
            let cost = base_cost(&node);
            match node {
                RouteNode::Wire { .. } => min_wire = min_wire.min(cost),
                RouteNode::InPin { .. } => min_pin = min_pin.min(cost),
                RouteNode::OutPin { .. } => {}
            }
        }
        if !min_wire.is_finite() {
            min_wire = 0.0;
        }
        if !min_pin.is_finite() {
            min_pin = 0.0;
        }

        // How many tiles of distance can the final pin-entering hop cover?
        // Scan the input-mux PIPs: a source wire in a neighbouring tile means
        // the bound may drop one intermediate wire.
        let mut pin_entry_reach = 0u32;
        for index in 0..device.pip_count() {
            let pip = device.pip(tmr_arch::PipId::from_index(index));
            if device.node(pip.dst).is_in_pin() {
                let reach = device
                    .node_tile(pip.src)
                    .manhattan(device.node_tile(pip.dst));
                pin_entry_reach = pin_entry_reach.max(reach);
                if pin_entry_reach >= 1 {
                    break;
                }
            }
        }

        let params = device.params();
        let max_distance = usize::from(params.cols) + usize::from(params.rows);
        let mut table = Vec::with_capacity(max_distance + 1);
        table.push(0.0f32);
        for distance in 1..=max_distance {
            let intermediate = if pin_entry_reach >= 1 {
                distance - 1
            } else {
                distance
            };
            table.push(intermediate as f32 * min_wire + min_pin);
        }
        Self { table }
    }

    /// The process-wide cached table for `device`, keyed by its
    /// [`DeviceParams`]; computed on first use.
    pub fn for_device(device: &Device) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<HashMap<DeviceParams, Arc<Lookahead>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut cache = cache.lock().expect("lookahead cache poisoned");
        Arc::clone(
            cache
                .entry(*device.params())
                .or_insert_with(|| Arc::new(Self::compute(device))),
        )
    }

    /// Lower bound on the remaining route cost from a node `distance` tiles
    /// away from the target sink. Saturates at the table end (distances can
    /// never exceed the grid perimeter).
    #[inline]
    pub fn cost_floor(&self, distance: u32) -> f32 {
        let index = (distance as usize).min(self.table.len() - 1);
        self.table[index]
    }

    /// Number of distance entries in the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_are_monotone_and_start_at_zero() {
        let device = Device::small(6, 6);
        let lookahead = Lookahead::compute(&device);
        assert_eq!(lookahead.cost_floor(0), 0.0);
        let mut previous = 0.0f32;
        for d in 0..lookahead.entries() as u32 {
            let floor = lookahead.cost_floor(d);
            assert!(floor >= previous);
            previous = floor;
        }
        // Distances past the table end saturate instead of panicking.
        assert_eq!(lookahead.cost_floor(u32::MAX), previous);
    }

    #[test]
    fn floors_never_exceed_unit_distance_cost() {
        // Intermediate hops cost at least the cheapest wire (1.0) and the
        // final pin entry is cheaper still, so the floor must stay at or
        // below `distance` — the old router's raw-Manhattan heuristic.
        let device = Device::small(8, 8);
        let lookahead = Lookahead::compute(&device);
        for d in 1..lookahead.entries() as u32 {
            assert!(lookahead.cost_floor(d) <= d as f32);
        }
    }

    #[test]
    fn cache_returns_shared_table() {
        let device = Device::small(5, 5);
        let a = Lookahead::for_device(&device);
        let b = Lookahead::for_device(&device);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, Lookahead::compute(&device));
    }
}
