//! Shared rendering glue for the table binaries: markdown tables and the
//! dependency-free JSON serialization of sweep results.
//!
//! `table3`, `table4` and `table_critical` all consume a
//! [`SweepReport`] and emit either markdown or a `--json` document; the
//! near-identical serializers they used to carry individually live here
//! once.

use tmr_analyze::Json;
use tmr_faultsim::CampaignResult;
use tmr_fpga::SweepReport;

/// Formats a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Serializes one campaign result to the shared JSON form used by the
/// `--json` mode of the table binaries.
pub fn campaign_json(name: &str, result: &CampaignResult) -> Json {
    let classification = Json::object(
        result
            .error_classification()
            .iter()
            .map(|(class, &count)| (class.label(), Json::from(count))),
    );
    Json::object([
        ("design", Json::str(name)),
        ("fault_list_size", Json::from(result.fault_list_size)),
        ("injected", Json::from(result.injected())),
        ("simulated", Json::from(result.simulated)),
        ("wrong_answers", Json::from(result.wrong_answers())),
        (
            "wrong_answer_percent",
            Json::from(result.wrong_answer_percent()),
        ),
        (
            "cross_domain_error_fraction",
            Json::from(result.cross_domain_error_fraction()),
        ),
        ("error_classification", classification),
    ])
}

/// The `device` field shared by every sweep document (`"28x28"`).
pub fn device_json(report: &SweepReport) -> Json {
    Json::str(format!("{}x{}", report.device.cols(), report.device.rows()))
}

/// The `cache` field of a sweep document: artifact-cache effectiveness
/// counters, so JSON consumers (and the CI bench log) can verify reuse.
pub fn cache_json(report: &SweepReport) -> Json {
    let stages = Json::object(report.stage_cache.iter().map(|&(stage, stats)| {
        (
            stage,
            Json::object([
                ("hits", Json::from(stats.hits as usize)),
                ("misses", Json::from(stats.misses as usize)),
            ]),
        )
    }));
    Json::object([
        ("hits", Json::from(report.cache.hits as usize)),
        ("misses", Json::from(report.cache.misses as usize)),
        ("entries", Json::from(report.cache.entries)),
        ("stages", stages),
    ])
}

/// Builds the complete `--json` document of a campaign table (`table3`,
/// `table4`): table name, any extra scalar fields, the shared device/cache
/// fields and one [`campaign_json`] entry per swept design.
pub fn sweep_campaign_document(
    table: &str,
    report: &SweepReport,
    extras: Vec<(&str, Json)>,
) -> Json {
    let mut fields = vec![("table", Json::str(table))];
    fields.extend(extras);
    fields.push(("device", device_json(report)));
    fields.push(("cache", cache_json(report)));
    fields.push((
        "designs",
        Json::array(
            report
                .campaigns()
                .map(|(name, result)| campaign_json(name, result)),
        ),
    ));
    Json::object(fields)
}

/// Builds the complete `--json` document of the static-criticality table:
/// one `CriticalityReport` JSON entry per swept design plus the shared
/// device/cache fields.
pub fn sweep_criticality_document(table: &str, report: &SweepReport) -> Json {
    Json::object([
        ("table", Json::str(table)),
        ("device", device_json(report)),
        ("cache", cache_json(report)),
        (
            "designs",
            Json::array(
                report
                    .variants
                    .iter()
                    .filter_map(|variant| Some(variant.analysis.as_ref()?.report().to_json())),
            ),
        ),
    ])
}

/// One line summarising sweep cache effectiveness, for the table binaries'
/// stderr and the CI bench log. Besides the aggregate counters it calls out
/// the `compiled` simulator stage (the levelized bit-parallel instruction
/// stream every campaign evaluates on), so bench logs show when campaigns
/// were served a cached compilation.
pub fn cache_summary(report: &SweepReport) -> String {
    let compiled = match report.stage_stats("compiled") {
        Some(stats) => format!(
            "; compiled stage: {} hits / {} misses",
            stats.hits, stats.misses
        ),
        None => String::new(),
    };
    format!("sweep artifact cache: {}{compiled}", report.cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(table.contains("| a | b |"));
        assert!(table.contains("|---|---|"));
        assert!(table.contains("| 1 | 2 |"));
    }

    #[test]
    fn campaign_json_includes_the_table_columns() {
        use tmr_faultsim::FaultOutcome;
        let result = CampaignResult {
            design: "demo".to_string(),
            fault_list_size: 10,
            simulated: 2,
            outcomes: vec![FaultOutcome {
                bit: 3,
                bits: vec![3],
                class: tmr_faultsim::FaultClass::Bridge,
                wrong_answer: true,
                first_error_cycle: Some(1),
                crosses_domains: true,
            }],
        };
        let json = campaign_json("demo", &result).render();
        assert!(json.contains(r#""design":"demo""#));
        assert!(json.contains(r#""injected":1"#));
        assert!(json.contains(r#""simulated":2"#));
        assert!(json.contains(r#""wrong_answers":1"#));
        assert!(json.contains(r#""Bridge":1"#));
    }
}
