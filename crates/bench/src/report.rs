//! Shared rendering glue for the table binaries: markdown tables and the
//! dependency-free JSON serialization of sweep results.
//!
//! `table3`, `table4` and `table_critical` all consume a
//! [`SweepReport`] and emit either markdown or a `--json` document; the
//! near-identical serializers they used to carry individually live here
//! once.

use tmr_analyze::Json;
use tmr_faultsim::{CampaignResult, SimStats};
use tmr_fpga::SweepReport;

/// Formats a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Serializes one campaign result to the shared JSON form used by the
/// `--json` mode of the table binaries.
pub fn campaign_json(name: &str, result: &CampaignResult) -> Json {
    let classification = Json::object(
        result
            .error_classification()
            .iter()
            .map(|(class, &count)| (class.label(), Json::from(count))),
    );
    Json::object([
        ("design", Json::str(name)),
        ("fault_list_size", Json::from(result.fault_list_size)),
        ("injected", Json::from(result.injected())),
        ("simulated", Json::from(result.simulated)),
        ("wrong_answers", Json::from(result.wrong_answers())),
        (
            "wrong_answer_percent",
            Json::from(result.wrong_answer_percent()),
        ),
        (
            "cross_domain_error_fraction",
            Json::from(result.cross_domain_error_fraction()),
        ),
        ("error_classification", classification),
    ])
}

/// The `device` field shared by every sweep document (`"28x28"`).
pub fn device_json(report: &SweepReport) -> Json {
    Json::str(format!("{}x{}", report.device.cols(), report.device.rows()))
}

/// The `cache` field of a sweep document: artifact-cache effectiveness
/// counters, so JSON consumers (and the CI bench log) can verify reuse.
pub fn cache_json(report: &SweepReport) -> Json {
    let stages = Json::object(report.stage_cache.iter().map(|&(stage, stats)| {
        (
            stage,
            Json::object([
                ("hits", Json::from(stats.hits as usize)),
                ("misses", Json::from(stats.misses as usize)),
            ]),
        )
    }));
    Json::object([
        ("hits", Json::from(report.cache.hits as usize)),
        ("misses", Json::from(report.cache.misses as usize)),
        ("entries", Json::from(report.cache.entries)),
        ("stages", stages),
    ])
}

/// The `sim` half of the `perf` object: the compiled engine's observability
/// counters (levels evaluated vs skipped, word widths, lane retirement and
/// cone-dedup rates), so JSON consumers can verify the fast paths ran.
pub fn sim_json(stats: &SimStats) -> Json {
    Json::object([
        (
            "levels_evaluated",
            Json::from(stats.levels_evaluated as usize),
        ),
        ("levels_skipped", Json::from(stats.levels_skipped as usize)),
        ("level_skip_rate", Json::from(stats.level_skip_rate())),
        ("ops_evaluated", Json::from(stats.ops_evaluated as usize)),
        ("ops_skipped", Json::from(stats.ops_skipped as usize)),
        ("op_skip_rate", Json::from(stats.op_skip_rate())),
        ("words_narrow", Json::from(stats.words_narrow as usize)),
        ("words_wide", Json::from(stats.words_wide as usize)),
        (
            "words_full_eval",
            Json::from(stats.words_full_eval as usize),
        ),
        (
            "max_lanes_per_word",
            Json::from(stats.max_lanes_per_word as usize),
        ),
        (
            "lanes_simulated",
            Json::from(stats.lanes_simulated as usize),
        ),
        (
            "lanes_retired_early",
            Json::from(stats.lanes_retired_early as usize),
        ),
        (
            "cone_dedup_hits",
            Json::from(stats.cone_dedup_hits as usize),
        ),
        ("cone_grouped", Json::from(stats.cone_grouped as usize)),
        ("cone_dedup_rate", Json::from(stats.cone_dedup_rate())),
    ])
}

/// The `perf` object of a sweep document: artifact-cache counters and the
/// merged simulator statistics under one structured roof.
pub fn perf_json(report: &SweepReport) -> Json {
    Json::object([
        ("cache", cache_json(report)),
        ("sim", sim_json(&report.sim_stats())),
    ])
}

/// Builds the complete `--json` document of a campaign table (`table3`,
/// `table4`): table name, any extra scalar fields, the shared device/perf
/// fields and one [`campaign_json`] entry per swept design.
pub fn sweep_campaign_document(
    table: &str,
    report: &SweepReport,
    extras: Vec<(&str, Json)>,
) -> Json {
    let mut fields = vec![("table", Json::str(table))];
    fields.extend(extras);
    fields.push(("device", device_json(report)));
    fields.push(("perf", perf_json(report)));
    fields.push((
        "designs",
        Json::array(
            report
                .campaigns()
                .map(|(name, result)| campaign_json(name, result)),
        ),
    ));
    Json::object(fields)
}

/// Builds the complete `--json` document of the static-criticality table:
/// one `CriticalityReport` JSON entry per swept design plus the shared
/// device/perf fields.
pub fn sweep_criticality_document(table: &str, report: &SweepReport) -> Json {
    Json::object([
        ("table", Json::str(table)),
        ("device", device_json(report)),
        ("perf", perf_json(report)),
        (
            "designs",
            Json::array(
                report
                    .variants
                    .iter()
                    .filter_map(|variant| Some(variant.analysis.as_ref()?.report().to_json())),
            ),
        ),
    ])
}

/// Performance lines for the table binaries' stderr and the CI bench log:
/// sweep cache effectiveness (including the `compiled` simulator stage, so
/// logs show when campaigns were served a cached compilation), the disk
/// store hit/miss counters when a store is attached (`TMR_CACHE_DIR` or an
/// explicit [`tmr_fpga::Store`]) and, when any campaign ran on the compiled
/// engine, its merged [`SimStats`] block.
pub fn perf_summary(report: &SweepReport) -> String {
    let compiled = match report.stage_stats("compiled") {
        Some(stats) => format!(
            "; compiled stage: {} hits / {} misses",
            stats.hits, stats.misses
        ),
        None => String::new(),
    };
    let disk = match &report.disk {
        Some(stats) => format!("; disk store: {stats}"),
        None => String::new(),
    };
    let sim = report.sim_stats();
    let sim_line = if sim.lanes_simulated > 0 {
        format!("\nsim stats: {sim}")
    } else {
        String::new()
    };
    let route = report.route_stats();
    let route_line = if route.routed > 0 {
        format!(
            "\nroute: {} variant(s), {} iterations, {} nodes expanded, {:.1} ms",
            route.routed,
            route.iterations,
            route.nodes_expanded,
            route.elapsed.as_secs_f64() * 1e3
        )
    } else {
        String::new()
    };
    format!(
        "sweep artifact cache: {}{compiled}{disk}{route_line}{sim_line}",
        report.cache
    )
}

/// The shared stderr perf report of the table binaries: one line (indented
/// under the table output) with an optional `label`/`elapsed` prefix and the
/// [`perf_summary`] of the sweep. All four binaries report through this one
/// helper, so the stderr format changes in exactly one place.
pub fn emit_stderr(label: &str, elapsed: Option<std::time::Duration>, report: &SweepReport) {
    match elapsed {
        Some(elapsed) => eprintln!(
            "  {label} in {:.1} s; {}",
            elapsed.as_secs_f64(),
            perf_summary(report)
        ),
        None => eprintln!("  {}", perf_summary(report)),
    }
}

/// Flushes pending trace records to the sink configured via `TMR_TRACE`
/// (a no-op returning `None` when tracing is off) and reports the file
/// written, if any. The table binaries call this once after their sweeps.
pub fn flush_trace() {
    if let Some(path) = tmr_trace::flush() {
        eprintln!("  trace written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(table.contains("| a | b |"));
        assert!(table.contains("|---|---|"));
        assert!(table.contains("| 1 | 2 |"));
    }

    #[test]
    fn campaign_json_includes_the_table_columns() {
        use tmr_faultsim::FaultOutcome;
        let result = CampaignResult {
            design: "demo".to_string(),
            fault_list_size: 10,
            simulated: 2,
            outcomes: vec![FaultOutcome {
                bit: 3,
                bits: vec![3],
                class: tmr_faultsim::FaultClass::Bridge,
                wrong_answer: true,
                first_error_cycle: Some(1),
                crosses_domains: true,
            }],
            stats: tmr_faultsim::SimStats::default(),
        };
        let json = campaign_json("demo", &result).render();
        assert!(json.contains(r#""design":"demo""#));
        assert!(json.contains(r#""injected":1"#));
        assert!(json.contains(r#""simulated":2"#));
        assert!(json.contains(r#""wrong_answers":1"#));
        assert!(json.contains(r#""Bridge":1"#));
    }
}
