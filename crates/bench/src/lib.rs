//! # tmr-bench
//!
//! The benchmark harness reproducing the tables and figures of the DATE 2005
//! paper. The `src/bin` targets regenerate the paper's tables
//! (`table1`–`table4`, `figures`); the Criterion benches under `benches/`
//! measure the performance of the individual flow stages on reduced designs.
//!
//! Shared helpers live here: building the five FIR variants, choosing a
//! device large enough to hold them, implementing them, running campaigns and
//! formatting markdown tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tmr_arch::{Device, DeviceParams};
use tmr_core::{estimate_resources, paper_variants, ResourceEstimate};
use tmr_designs::FirFilter;
use tmr_faultsim::{CampaignEngine, CampaignOptions, CampaignResult};
use tmr_netlist::Netlist;
use tmr_pnr::{place_and_route, BitReport, RoutedDesign};
use tmr_synth::{lower, optimize, techmap, Design};

/// The five FIR filter designs evaluated in the paper, in Table 3 order:
/// `standard`, `tmr_p1`, `tmr_p2`, `tmr_p3`, `tmr_p3_nv`.
pub fn fir_variants() -> Vec<(String, Design)> {
    let base = FirFilter::paper_filter().to_design();
    paper_variants(&base).expect("the FIR filter is an unprotected design")
}

/// Synthesises a word-level design to a mapped netlist (panicking on error —
/// the harness only feeds it designs produced by this workspace).
pub fn synthesize(design: &Design) -> Netlist {
    techmap(&optimize(&lower(design).expect("lowering"))).expect("mapping")
}

/// Chooses the evaluation device: the XC2S200E-like fabric if every netlist
/// fits at reasonable utilisation, otherwise the same architecture scaled up
/// to the smallest square grid that keeps LUT and FF utilisation below 50 %
/// (our mapping has no carry chains, so designs are larger than Xilinx ISE's).
pub fn paper_device(netlists: &[&Netlist]) -> Device {
    let mut params = DeviceParams::xc2s200e_like();
    let max_luts = netlists
        .iter()
        .map(|n| {
            let s = n.stats();
            s.luts + s.constants
        })
        .max()
        .unwrap_or(0);
    let max_ffs = netlists
        .iter()
        .map(|n| n.stats().flip_flops)
        .max()
        .unwrap_or(0);
    let max_iobs = netlists
        .iter()
        .map(|n| n.stats().io_buffers)
        .max()
        .unwrap_or(0);

    let fits = |params: &DeviceParams| {
        let tiles = usize::from(params.cols) * usize::from(params.rows);
        let luts = tiles * params.luts_per_tile();
        let ffs = tiles * params.ffs_per_tile();
        let perimeter = 2 * (usize::from(params.cols) + usize::from(params.rows)) - 4;
        let iobs = perimeter * usize::from(params.iobs_per_perimeter_tile);
        (max_luts as f64) < luts as f64 * 0.50
            && (max_ffs as f64) < ffs as f64 * 0.50
            && max_iobs <= iobs
    };

    while !fits(&params) {
        params.cols += 4;
        params.rows += 4;
    }
    Device::new(params)
}

/// One fully implemented design plus its reports.
pub struct ImplementedDesign {
    /// Variant name (`standard`, `tmr_p1`, …).
    pub name: String,
    /// The word-level design.
    pub design: Design,
    /// The routed implementation.
    pub routed: RoutedDesign,
    /// Area / timing estimate (Table 2 left columns).
    pub resources: ResourceEstimate,
    /// Design-related configuration bit counts (Table 2 right columns).
    pub bits: BitReport,
}

/// Implements every FIR variant on a common device and returns the device and
/// the implementations. This is the expensive shared step behind Tables 2–4.
pub fn implement_fir_variants(seed: u64) -> (Device, Vec<ImplementedDesign>) {
    let variants = fir_variants();
    let netlists: Vec<(String, Design, Netlist)> = variants
        .into_iter()
        .map(|(name, design)| {
            let netlist = synthesize(&design);
            (name, design, netlist)
        })
        .collect();
    let device = paper_device(&netlists.iter().map(|(_, _, n)| n).collect::<Vec<_>>());

    let implementations = netlists
        .into_iter()
        .map(|(name, design, netlist)| {
            let routed = place_and_route(&device, &netlist, seed)
                .unwrap_or_else(|e| panic!("place-and-route of `{name}` failed: {e}"));
            let resources = estimate_resources(routed.netlist());
            let bits = routed.bit_report(&device);
            ImplementedDesign {
                name,
                design,
                routed,
                resources,
                bits,
            }
        })
        .collect();
    (device, implementations)
}

/// Runs the fault-injection campaign of one implemented design through the
/// sharded [`CampaignEngine`] (one shard per CPU core, or `TMR_SHARDS` when
/// set; results are bit-identical to the sequential path for any shard
/// count).
pub fn campaign(
    device: &Device,
    implemented: &ImplementedDesign,
    faults: usize,
    cycles: usize,
) -> CampaignResult {
    let mut engine = CampaignEngine::new(
        device,
        &implemented.routed,
        CampaignOptions {
            faults,
            cycles,
            ..CampaignOptions::default()
        },
    );
    if let Some(shards) = shards_from_env() {
        engine = engine.with_shards(shards);
    }
    engine.run().expect("flow netlists are always simulable")
}

/// Explicit shard count for campaigns, configurable through the `TMR_SHARDS`
/// environment variable (default: one shard per CPU core).
pub fn shards_from_env() -> Option<usize> {
    std::env::var("TMR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Number of faults per campaign, configurable through the `TMR_FAULTS`
/// environment variable (default 4000 — roughly the same sampling ratio as
/// the paper's "10 % of the configuration memory bits related to the DUT").
pub fn faults_from_env() -> usize {
    std::env::var("TMR_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000)
}

/// Number of stimulus cycles per fault, configurable through `TMR_CYCLES`
/// (default 24: enough for a sample to traverse the 11-tap filter and reach
/// the output).
pub fn cycles_from_env() -> usize {
    std::env::var("TMR_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Returns `true` if `--json` was passed on the command line: the table
/// binaries then emit a machine-readable document (rendered with the
/// dependency-free serializer shared with `tmr-analyze`'s
/// `CriticalityReport`) instead of markdown.
pub fn json_requested() -> bool {
    std::env::args().any(|arg| arg == "--json")
}

/// Serializes one campaign result to the shared JSON form used by the
/// `--json` mode of the table binaries.
pub fn campaign_json(name: &str, result: &CampaignResult) -> tmr_analyze::Json {
    use tmr_analyze::Json;
    let classification = Json::object(
        result
            .error_classification()
            .iter()
            .map(|(class, &count)| (class.label(), Json::from(count))),
    );
    Json::object([
        ("design", Json::str(name)),
        ("fault_list_size", Json::from(result.fault_list_size)),
        ("injected", Json::from(result.injected())),
        ("simulated", Json::from(result.simulated)),
        ("wrong_answers", Json::from(result.wrong_answers())),
        (
            "wrong_answer_percent",
            Json::from(result.wrong_answer_percent()),
        ),
        (
            "cross_domain_error_fraction",
            Json::from(result.cross_domain_error_fraction()),
        ),
        ("error_classification", classification),
    ])
}

/// Formats a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_variants_are_the_five_paper_designs() {
        let names: Vec<String> = fir_variants().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["standard", "tmr_p1", "tmr_p2", "tmr_p3", "tmr_p3_nv"]
        );
    }

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(table.contains("| a | b |"));
        assert!(table.contains("|---|---|"));
        assert!(table.contains("| 1 | 2 |"));
    }

    #[test]
    fn campaign_json_includes_the_table_columns() {
        use tmr_faultsim::FaultOutcome;
        let result = CampaignResult {
            design: "demo".to_string(),
            fault_list_size: 10,
            simulated: 2,
            outcomes: vec![FaultOutcome {
                bit: 3,
                class: tmr_faultsim::FaultClass::Bridge,
                wrong_answer: true,
                first_error_cycle: Some(1),
                crosses_domains: true,
            }],
        };
        let json = campaign_json("demo", &result).render();
        assert!(json.contains(r#""design":"demo""#));
        assert!(json.contains(r#""injected":1"#));
        assert!(json.contains(r#""simulated":2"#));
        assert!(json.contains(r#""wrong_answers":1"#));
        assert!(json.contains(r#""Bridge":1"#));
    }

    #[test]
    fn device_scales_until_designs_fit() {
        // A netlist bigger than the XC2S200E forces the grid to grow.
        let variants = fir_variants();
        let tmr_p1 = synthesize(&variants[1].1);
        let device = paper_device(&[&tmr_p1]);
        let capacity = device.lut_sites().len();
        let stats = tmr_p1.stats();
        assert!((stats.luts + stats.constants) as f64 / capacity as f64 <= 0.50);
    }
}
