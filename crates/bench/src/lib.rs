//! # tmr-bench
//!
//! The benchmark harness reproducing the tables and figures of the DATE 2005
//! paper. The `src/bin` targets regenerate the paper's tables
//! (`table1`–`table4`, `table_critical`, `figures`) plus the beyond-the-paper
//! multi-bit-upset / scrub-interval table (`table_mbu`); the Criterion
//! benches under `benches/` measure the performance of the individual flow
//! stages on reduced designs.
//!
//! The table binaries are thin views over one [`Sweep`] of the five paper
//! FIR variants: [`paper_sweep`] builds it (device auto-sizing included) and
//! [`campaign_from_env`] wires the environment knobs (`TMR_FAULTS`,
//! `TMR_CYCLES`, `TMR_SHARDS`, `TMR_CI`) into a
//! [`CampaignBuilder`]. Rendering glue shared by the binaries lives in
//! [`report`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tmr_arch::{Device, DeviceParams};
use tmr_core::paper_variants;
use tmr_designs::FirFilter;
use tmr_faultsim::{CampaignBuilder, EarlyStop};
use tmr_fpga::flow::device_for;
use tmr_fpga::Sweep;
use tmr_netlist::Netlist;
use tmr_synth::{lower, optimize, techmap, Design};

pub mod report;

pub use report::{campaign_json, markdown_table};

/// The five FIR filter designs evaluated in the paper, in Table 3 order:
/// `standard`, `tmr_p1`, `tmr_p2`, `tmr_p3`, `tmr_p3_nv`.
pub fn fir_variants() -> Vec<(String, Design)> {
    let base = FirFilter::paper_filter().to_design();
    paper_variants(&base).expect("the FIR filter is an unprotected design")
}

/// Synthesises a word-level design to a mapped netlist (panicking on error —
/// the harness only feeds it designs produced by this workspace).
pub fn synthesize(design: &Design) -> Netlist {
    techmap(&optimize(&lower(design).expect("lowering"))).expect("mapping")
}

/// Chooses the evaluation device: the XC2S200E-like fabric if every netlist
/// fits at reasonable utilisation, otherwise the same architecture scaled up
/// to the smallest square grid that keeps LUT and FF utilisation below 50 %
/// (our mapping has no carry chains, so designs are larger than Xilinx ISE's).
pub fn paper_device(netlists: &[&Netlist]) -> Device {
    device_for(DeviceParams::xc2s200e_like(), netlists, 0.50)
}

/// The sweep behind every table binary: the paper's 11-tap FIR through the
/// five variants on an auto-sized XC2S200E-like device. Attach a campaign
/// with [`Sweep::campaign`] (Tables 3/4) or enable the static analysis with
/// [`Sweep::analyze`] (`table_critical`), then call [`Sweep::run`] once.
///
/// `TMR_BASE=small` swaps in the reduced 5-tap filter *and* the small
/// evaluation fabric the examples use (same five variants, same code paths,
/// implementation minutes → seconds) for smoke runs — the reduced design is
/// placed on the `Device::small` architecture, whose richer input-pin
/// candidates are what its TMR variants route on.
pub fn paper_sweep(seed: u64) -> Sweep {
    let mut sweep = if small_base_from_env() {
        // 24x24 = 1152 LUT sites: tmr_p1, the largest small variant, needs 957.
        Sweep::paper(&FirFilter::small_filter().to_design())
            .auto_device(DeviceParams::small(24, 24), 0.90)
    } else {
        Sweep::paper(&FirFilter::paper_filter().to_design())
    };
    sweep = sweep.seed(seed);
    if let Some(shards) = shards_from_env() {
        sweep = sweep.shards(shards);
    }
    sweep
}

/// Returns `true` when `TMR_BASE=small` asks the table binaries for the
/// reduced 5-tap base filter instead of the paper's 11-tap one.
pub fn small_base_from_env() -> bool {
    std::env::var("TMR_BASE").is_ok_and(|v| v == "small")
}

/// The campaign configuration of the table binaries, from the environment:
/// `TMR_FAULTS` faults per design, `TMR_CYCLES` stimulus cycles per fault,
/// `TMR_SHARDS` worker shards and — when `TMR_CI` is set — statistical
/// early stop at that wrong-answer-rate confidence half-width (e.g.
/// `TMR_CI=0.005` stops once the 95 % interval is within ±0.5 %).
pub fn campaign_from_env() -> CampaignBuilder {
    let mut campaign = CampaignBuilder::new()
        .faults(faults_from_env())
        .cycles(cycles_from_env());
    if let Some(shards) = shards_from_env() {
        campaign = campaign.shards(shards);
    }
    if let Some(half_width) = ci_from_env() {
        campaign = campaign.early_stop(EarlyStop::at_half_width(half_width));
    }
    campaign
}

/// Explicit shard count for campaigns, configurable through the `TMR_SHARDS`
/// environment variable (default: one shard per CPU core).
pub fn shards_from_env() -> Option<usize> {
    std::env::var("TMR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Number of faults per campaign, configurable through the `TMR_FAULTS`
/// environment variable (default 4000 — roughly the same sampling ratio as
/// the paper's "10 % of the configuration memory bits related to the DUT").
pub fn faults_from_env() -> usize {
    std::env::var("TMR_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000)
}

/// Number of stimulus cycles per fault, configurable through `TMR_CYCLES`
/// (default 24: enough for a sample to traverse the 11-tap filter and reach
/// the output).
pub fn cycles_from_env() -> usize {
    std::env::var("TMR_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Early-stop confidence half-width from `TMR_CI` (a rate in `[0, 1]`, e.g.
/// `0.01` = ±1 %); unset disables early stopping.
pub fn ci_from_env() -> Option<f64> {
    std::env::var("TMR_CI").ok().and_then(|v| v.parse().ok())
}

/// Returns `true` if `--json` was passed on the command line: the table
/// binaries then emit a machine-readable document (rendered with the
/// dependency-free serializer shared with `tmr-analyze`'s
/// `CriticalityReport`) instead of markdown.
pub fn json_requested() -> bool {
    std::env::args().any(|arg| arg == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_variants_are_the_five_paper_designs() {
        let names: Vec<String> = fir_variants().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["standard", "tmr_p1", "tmr_p2", "tmr_p3", "tmr_p3_nv"]
        );
    }

    #[test]
    fn device_scales_until_designs_fit() {
        // A netlist bigger than the XC2S200E forces the grid to grow.
        let variants = fir_variants();
        let tmr_p1 = synthesize(&variants[1].1);
        let device = paper_device(&[&tmr_p1]);
        let capacity = device.lut_sites().len();
        let stats = tmr_p1.stats();
        assert!((stats.luts + stats.constants) as f64 / capacity as f64 <= 0.50);
    }

    #[test]
    fn env_campaign_uses_the_documented_defaults() {
        // The defaults apply when the environment variables are unset (the
        // test runner does not set them).
        let campaign = campaign_from_env();
        assert_eq!(campaign.options().faults(), faults_from_env());
        assert_eq!(campaign.options().cycles(), cycles_from_env());
    }
}
