//! The static counterpart of Tables 3/4: exhaustive criticality analysis of
//! every configuration bit of the five FIR variants, with no simulation.
//!
//! Where `table3`/`table4` sample faults and simulate them, this binary runs
//! `tmr-analyze`'s `StaticAnalysis` over the **whole** configuration space of
//! each implemented design and reports, per variant: benign bits,
//! single-domain bits per domain, and the TMR-defeating domain-crossing bits
//! broken down by coupled domain pair and effect class.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin table_critical
//! cargo run --release -p tmr-bench --bin table_critical -- --json
//! ```

use tmr_analyze::{Json, StaticAnalysis};
use tmr_bench::{implement_fir_variants, json_requested, markdown_table};
use tmr_faultsim::FaultClass;

fn main() {
    let json = json_requested();
    let (device, implementations) = implement_fir_variants(1);

    let reports: Vec<(String, tmr_analyze::CriticalityReport)> = implementations
        .iter()
        .map(|implementation| {
            let analysis = StaticAnalysis::run(&device, &implementation.routed);
            (implementation.name.clone(), analysis.report())
        })
        .collect();

    if json {
        let document = Json::object([
            ("table", Json::str("table_critical")),
            (
                "device",
                Json::str(format!("{}x{}", device.cols(), device.rows())),
            ),
            (
                "designs",
                Json::array(reports.iter().map(|(_, report)| report.to_json())),
            ),
        ]);
        println!("{document}");
        return;
    }

    println!("# Static criticality analysis — TMR-defeating bits per design\n");
    let mut rows = Vec::new();
    for (name, report) in &reports {
        rows.push(vec![
            name.clone(),
            report.design_related.to_string(),
            report.observable.to_string(),
            format!("{:.0}", 100.0 * report.pruned_fraction()),
            report.crossing_total().to_string(),
            report.voted_tmr.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Design-related bits",
                "Observable bits",
                "Pruned [%]",
                "TMR-defeating bits",
                "Voted TMR",
            ],
            &rows
        )
    );

    println!("## Domain-crossing bits by effect class\n");
    let mut class_rows = Vec::new();
    for class in FaultClass::ALL {
        let mut row = vec![class.label().to_string()];
        for (_, report) in &reports {
            let count = report.crossing_by_class().get(&class).copied().unwrap_or(0);
            row.push(count.to_string());
        }
        class_rows.push(row);
    }
    let mut headers = vec!["Effect"];
    let names: Vec<&str> = reports.iter().map(|(name, _)| name.as_str()).collect();
    headers.extend(names);
    println!("{}", markdown_table(&headers, &class_rows));

    println!(
        "Every TMR-defeating bit above couples two distinct redundant domains through\n\
         a routing effect — the paper's voter-defeating mechanism. The unprotected\n\
         `standard` design has a single domain, so it reports zero crossing bits while\n\
         staying fully observable (nothing can be pruned without voters)."
    );
}
