//! The static counterpart of Tables 3/4: exhaustive criticality analysis of
//! every configuration bit of the five FIR variants, with no simulation —
//! one [`Sweep`](tmr_fpga::Sweep) call with the analysis stage enabled.
//!
//! Where `table3`/`table4` sample faults and simulate them, this binary runs
//! `tmr-analyze`'s `StaticAnalysis` over the **whole** configuration space of
//! each implemented design and reports, per variant: benign bits,
//! single-domain bits per domain, and the TMR-defeating domain-crossing bits
//! broken down by coupled domain pair and effect class.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin table_critical
//! cargo run --release -p tmr-bench --bin table_critical -- --json
//! ```
//!
//! `TMR_CACHE_DIR=dir` attaches a disk artifact store shared with the other
//! table binaries, so the five implementations are read back instead of
//! re-synthesized on repeat runs.

use tmr_bench::report::{emit_stderr, flush_trace, markdown_table, sweep_criticality_document};
use tmr_bench::{json_requested, paper_sweep};
use tmr_faultsim::FaultClass;

fn main() {
    let json = json_requested();

    let sweep_report = paper_sweep(1)
        .analyze(true)
        .run()
        .expect("the paper variants implement on the auto-sized device");
    emit_stderr("", None, &sweep_report);
    flush_trace();

    let reports: Vec<(&str, tmr_analyze::CriticalityReport)> = sweep_report
        .variants
        .iter()
        .map(|variant| {
            let analysis = variant.analysis.as_ref().expect("analysis enabled");
            (variant.name.as_str(), analysis.report())
        })
        .collect();

    if json {
        println!(
            "{}",
            sweep_criticality_document("table_critical", &sweep_report)
        );
        return;
    }

    println!("# Static criticality analysis — TMR-defeating bits per design\n");
    let mut rows = Vec::new();
    for (name, report) in &reports {
        rows.push(vec![
            name.to_string(),
            report.design_related.to_string(),
            report.observable.to_string(),
            format!("{:.0}", 100.0 * report.pruned_fraction()),
            report.crossing_total().to_string(),
            report.voted_tmr.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Design-related bits",
                "Observable bits",
                "Pruned [%]",
                "TMR-defeating bits",
                "Voted TMR",
            ],
            &rows
        )
    );

    println!("## Domain-crossing bits by effect class\n");
    let mut class_rows = Vec::new();
    for class in FaultClass::ALL {
        let mut row = vec![class.label().to_string()];
        for (_, report) in &reports {
            let count = report.crossing_by_class().get(&class).copied().unwrap_or(0);
            row.push(count.to_string());
        }
        class_rows.push(row);
    }
    let mut headers = vec!["Effect"];
    let names: Vec<&str> = reports.iter().map(|(name, _)| *name).collect();
    headers.extend(names);
    println!("{}", markdown_table(&headers, &class_rows));

    println!(
        "Every TMR-defeating bit above couples two distinct redundant domains through\n\
         a routing effect — the paper's voter-defeating mechanism. The unprotected\n\
         `standard` design has a single domain, so it reports zero crossing bits while\n\
         staying fully observable (nothing can be pruned without voters)."
    );
}
