//! Differential fuzzer for the whole implementation flow.
//!
//! Per seed: generate a random synthesizable design (knobs sampled from the
//! seed), implement it under one of the five TMR variants on an auto-sized
//! device, then cross-check all three oracles under all three fault models —
//! compiled vs interpreting simulator, static analysis vs dynamic outcomes
//! (including pruning transparency), and sharded vs sequential campaign
//! merge. Failing seeds are delta-debugged down to minimal designs and
//! emitted as self-contained regression cases.
//!
//! ```text
//! # fuzz seeds 0..200 with the default budget:
//! cargo run --release -p tmr-bench --bin tmr-fuzz -- 0 200
//!
//! # replay one seed verbosely and emit a shrunken case on failure:
//! cargo run --release -p tmr-bench --bin tmr-fuzz -- 17 18 \
//!     --emit tests/fuzz_regressions
//! ```
//!
//! Options:
//!
//! * `<start> <end>` — seed range to fuzz (half-open; default `0 50`).
//! * `--jobs <n>` — fuzz seeds on a pool of `n` worker threads (each seed
//!   is independent); defaults to the machine's available parallelism.
//!   Reports are printed in seed order and shrinking stays sequential, so
//!   the output is byte-identical for any job count.
//! * `--faults <n>` / `--cycles <n>` / `--shards <n>` — campaign budget per
//!   oracle check (defaults 120 / 8 / 4).
//! * `--emit <dir>` — shrink each failing seed and write a
//!   `seed<NNNN>-<kind>.case` file into `<dir>`.
//! * `--no-shrink` — with `--emit`, write the unshrunken design instead
//!   (fast triage of long-running failures).
//! * `--quiet` — only print failures and the final summary.
//!
//! Exit status is 0 when every seed passes all oracles, 1 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;
use tmr_fpga::fuzz::{run_seed, shrink_case, FuzzOptions, RegressionCase, SeedReport};

fn main() -> ExitCode {
    let mut range = Vec::new();
    let mut options = FuzzOptions::default();
    let mut emit: Option<PathBuf> = None;
    let mut do_shrink = true;
    let mut quiet = false;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--jobs" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage("--jobs needs a number >= 1"),
            },
            "--faults" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) => options.faults = n,
                None => return usage("--faults needs a number"),
            },
            "--cycles" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) => options.cycles = n,
                None => return usage("--cycles needs a number"),
            },
            "--shards" => match arguments.next().and_then(|n| n.parse().ok()) {
                Some(n) => options.shards = n,
                None => return usage("--shards needs a number"),
            },
            "--emit" => emit = arguments.next().map(PathBuf::from),
            "--no-shrink" => do_shrink = false,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: tmr-fuzz [<start> <end>] [--jobs <n>] [--faults <n>] \
                     [--cycles <n>] [--shards <n>] [--emit <dir>] [--no-shrink] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => match other.parse::<u64>() {
                Ok(seed) if range.len() < 2 => range.push(seed),
                _ => return usage(&format!("unknown argument {other:?}")),
            },
        }
    }
    let (start, end) = match range.as_slice() {
        [] => (0, 50),
        [start] => (*start, *start + 1),
        [start, end] => (*start, *end),
        _ => unreachable!(),
    };
    if end <= start {
        return usage("empty seed range");
    }

    let mut failed_seeds = 0usize;
    let mut failure_total = 0usize;
    for report in fuzz_range(start, end, jobs, &options) {
        let seed = report.seed;
        if report.passed() {
            if !quiet {
                println!("{report}");
            }
            continue;
        }
        failed_seeds += 1;
        failure_total += report.failures.len();
        println!("{report}");
        for failure in &report.failures {
            println!("    {failure}");
        }
        if let Some(dir) = &emit {
            let kind = report.failures[0].kind();
            let mut case = RegressionCase::from_seed(seed, kind, &options);
            if do_shrink {
                eprintln!(
                    "    shrinking seed {seed} ({} rows)...",
                    case.spec.rows.len()
                );
                case = shrink_case(&case);
            }
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("tmr-fuzz: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
            let path = dir.join(format!("seed{seed:04}-{kind}.case"));
            if let Err(err) = std::fs::write(&path, case.to_string()) {
                eprintln!("tmr-fuzz: cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "    wrote {} ({} rows)",
                path.display(),
                case.spec.rows.len()
            );
        }
    }

    let seeds = end - start;
    if failed_seeds == 0 {
        println!("tmr-fuzz: {seeds} seeds, all oracles held");
        ExitCode::SUCCESS
    } else {
        println!(
            "tmr-fuzz: {failed_seeds}/{seeds} seeds failed ({failure_total} oracle violations)"
        );
        ExitCode::FAILURE
    }
}

/// Fuzzes `[start, end)` on a pool of `jobs` worker threads and returns the
/// reports sorted by seed. Seeds are striped across workers (worker `w`
/// takes `start + w`, `start + w + jobs`, …); each seed is fully independent,
/// so the reports — and therefore the printed output — are identical for any
/// job count. `jobs == 1` runs inline without spawning.
fn fuzz_range(start: u64, end: u64, jobs: usize, options: &FuzzOptions) -> Vec<SeedReport> {
    if jobs <= 1 {
        return (start..end).map(|seed| run_seed(seed, options)).collect();
    }
    let mut reports: Vec<SeedReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                scope.spawn(move || {
                    (start + worker as u64..end)
                        .step_by(jobs)
                        .map(|seed| run_seed(seed, options))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("fuzz worker panicked"))
            .collect()
    });
    reports.sort_by_key(|report| report.seed);
    reports
}

fn usage(message: &str) -> ExitCode {
    eprintln!("tmr-fuzz: {message} (try --help)");
    ExitCode::FAILURE
}
