//! Regenerates Table 4 of the paper: classification of the injected upsets
//! that caused an error in each design, using the effect taxonomy
//! (LUT / MUX / Initialization / Open / Bridge / Input-Antenna / Conflict /
//! Others) — one [`Sweep`](tmr_fpga::Sweep) call over the staged pipeline.
//!
//! Fault count, stimulus length, shard count, early stopping and the disk
//! artifact store are controlled by `TMR_FAULTS`, `TMR_CYCLES`,
//! `TMR_SHARDS`, `TMR_CI` and `TMR_CACHE_DIR`, as for `table3`.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin table4
//! ```
//!
//! With `--json` the per-design error classifications are emitted as a single
//! JSON document (shared serializer in `tmr_bench::report`) instead of
//! markdown.

use tmr_analyze::Json;
use tmr_bench::report::{emit_stderr, flush_trace, markdown_table, sweep_campaign_document};
use tmr_bench::{campaign_from_env, cycles_from_env, faults_from_env, json_requested, paper_sweep};
use tmr_faultsim::FaultClass;

fn main() {
    let faults = faults_from_env();
    let cycles = cycles_from_env();
    let json = json_requested();

    let report = paper_sweep(1)
        .campaign(campaign_from_env())
        .run()
        .expect("the paper variants implement on the auto-sized device");
    emit_stderr("", None, &report);
    flush_trace();

    if json {
        let document = sweep_campaign_document(
            "table4",
            &report,
            vec![
                ("faults", Json::from(faults)),
                ("cycles", Json::from(cycles)),
            ],
        );
        println!("{document}");
        return;
    }

    println!("# Table 4 — Effects induced by the injected upsets that caused an error");
    println!("({faults} faults per design, {cycles} stimulus cycles per fault)\n");

    let mut headers: Vec<String> = vec!["Effect".to_string()];
    let mut columns = Vec::new();
    for (name, result) in report.campaigns() {
        headers.push(format!("{name} [#]"));
        headers.push(format!("{name} [%]"));
        columns.push(result.error_classification());
    }

    let mut rows = Vec::new();
    let totals: Vec<usize> = columns.iter().map(|c| c.values().sum()).collect();
    for class in FaultClass::ALL {
        let mut row = vec![class.label().to_string()];
        for (column, &total) in columns.iter().zip(totals.iter()) {
            let count = column.get(&class).copied().unwrap_or(0);
            let percent = if total > 0 {
                100.0 * count as f64 / total as f64
            } else {
                0.0
            };
            row.push(count.to_string());
            row.push(format!("{percent:.0}"));
        }
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_string()];
    for &total in &totals {
        total_row.push(total.to_string());
        total_row.push(String::new());
    }
    rows.push(total_row);

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", markdown_table(&header_refs, &rows));

    println!(
        "Paper reference (error-causing upsets, selected rows): the general routing\n\
         dominates every column (Open 25–40 %, Bridge 8–20 %, Conflict up to 25 %),\n\
         LUT upsets never defeat any TMR variant, and MUX/Initialization stay below 8 %."
    );
}
