//! Submits one fault-injection job to a running `tmr-campaignd` socket and
//! streams the job's NDJSON events to stdout until its result arrives.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin tmr-submit -- \
//!     --socket /tmp/tmr-campaignd.sock \
//!     --design counter:4 --variant p2 --faults 200 --cycles 8
//! ```
//!
//! Options:
//!
//! * `--socket <path>` — the daemon socket (required).
//! * `--design <entry>` — registry entry: `fir`, `fir:paper`,
//!   `counter:<w>`, `accumulator:<w>`, `moving_sum:<t>,<i>,<s>`
//!   (default `fir`).
//! * `--variant <v>` — `standard`, `p1`, `p2`, `p3` or `p3_nv`.
//! * `--model <m>` — `single`, `mbu:<pattern>` or `accumulate:<k>`.
//! * `--faults`, `--cycles`, `--batch`, `--seed`, `--ci <half-width>`,
//!   `--device <cols>x<rows>`, `--id <job-id>` — campaign knobs
//!   (`tmr_serve::protocol::JobSpec` defaults apply).
//! * `--validate` — check every received line with the shared
//!   `tmr_core::json` validator; exits 2 on the first malformed line.
//! * `--status` / `--shutdown` — query or stop the daemon instead of
//!   submitting.
//!
//! Exit code: 0 once the job's `result` event arrives, 1 on an `error`
//! event (or connection problems), 2 on a validation failure.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use tmr_serve::{Event, JobSpec, Request};

enum Mode {
    Submit,
    Status,
    Shutdown,
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut spec = JobSpec::default();
    let mut id: Option<String> = None;
    let mut validate = false;
    let mut mode = Mode::Submit;

    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            arguments
                .next()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match argument.as_str() {
            "--socket" => match value("--socket") {
                Ok(path) => socket = Some(PathBuf::from(path)),
                Err(code) => return code,
            },
            "--design" => match value("--design") {
                Ok(design) => spec.design = design,
                Err(code) => return code,
            },
            "--variant" => match value("--variant") {
                Ok(variant) => spec.variant = variant,
                Err(code) => return code,
            },
            "--model" => match value("--model") {
                Ok(model) => spec.model = model,
                Err(code) => return code,
            },
            "--faults" => match parse_number(value("--faults"), "--faults") {
                Ok(faults) => spec.faults = faults,
                Err(code) => return code,
            },
            "--cycles" => match parse_number(value("--cycles"), "--cycles") {
                Ok(cycles) => spec.cycles = cycles,
                Err(code) => return code,
            },
            "--batch" => match parse_number(value("--batch"), "--batch") {
                Ok(batch) => spec.batch = batch,
                Err(code) => return code,
            },
            "--seed" => match parse_number(value("--seed"), "--seed") {
                Ok(seed) => spec.seed = seed,
                Err(code) => return code,
            },
            "--ci" => match parse_number(value("--ci"), "--ci") {
                Ok(ci) => spec.ci = Some(ci),
                Err(code) => return code,
            },
            "--device" => match value("--device") {
                Ok(device) => match parse_device(&device) {
                    Some(dims) => spec.device = Some(dims),
                    None => return usage("--device wants <cols>x<rows>"),
                },
                Err(code) => return code,
            },
            "--id" => match value("--id") {
                Ok(job_id) => id = Some(job_id),
                Err(code) => return code,
            },
            "--validate" => validate = true,
            "--status" => mode = Mode::Status,
            "--shutdown" => mode = Mode::Shutdown,
            "--help" | "-h" => {
                eprintln!("usage: tmr-submit --socket <path> [spec options] [--validate]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let Some(socket) = socket else {
        return usage("--socket is required");
    };
    let stream = match UnixStream::connect(&socket) {
        Ok(stream) => stream,
        Err(err) => {
            eprintln!("tmr-submit: cannot connect to {}: {err}", socket.display());
            return ExitCode::FAILURE;
        }
    };

    let request = match mode {
        Mode::Submit => Request::Submit { id, spec },
        Mode::Status => Request::Status,
        Mode::Shutdown => Request::Shutdown,
    };
    {
        let mut stream = &stream;
        if writeln!(stream, "{}", request.render()).is_err() {
            eprintln!("tmr-submit: connection lost while sending the request");
            return ExitCode::FAILURE;
        }
        let _ = stream.flush();
    }

    // Stream events until this request's terminal one.
    let reader = BufReader::new(&stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if validate {
            if let Err(err) = tmr_core::json::validate(line) {
                eprintln!("tmr-submit: invalid JSON from daemon: {err}");
                return ExitCode::from(2);
            }
        }
        println!("{line}");
        match Event::parse(line) {
            Ok(Event::Result { .. }) => return ExitCode::SUCCESS,
            Ok(Event::Error { .. }) => return ExitCode::FAILURE,
            Ok(Event::Status { .. }) if matches!(mode, Mode::Status) => return ExitCode::SUCCESS,
            Ok(Event::Shutdown) if matches!(mode, Mode::Shutdown) => return ExitCode::SUCCESS,
            _ => {}
        }
    }
    eprintln!("tmr-submit: daemon closed the connection before a terminal event");
    ExitCode::FAILURE
}

fn parse_number<T: std::str::FromStr>(
    value: Result<String, ExitCode>,
    name: &str,
) -> Result<T, ExitCode> {
    match value {
        Ok(text) => text
            .parse()
            .map_err(|_| usage(&format!("{name} wants a number, got {text:?}"))),
        Err(code) => Err(code),
    }
}

fn parse_device(text: &str) -> Option<(u16, u16)> {
    let (cols, rows) = text.split_once('x')?;
    Some((cols.trim().parse().ok()?, rows.trim().parse().ok()?))
}

fn usage(message: &str) -> ExitCode {
    eprintln!("tmr-submit: {message}");
    eprintln!("usage: tmr-submit --socket <path> [spec options] [--validate]");
    ExitCode::FAILURE
}
