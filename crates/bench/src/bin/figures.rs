//! Regenerates the structural content of Figures 1–4 of the paper:
//!
//! * Fig. 1 — the basic TMR scheme (triplicated inputs, redundant logic,
//!   voted registers, output voter);
//! * Fig. 2 — the TMR register with voters and refresh;
//! * Fig. 3 — the TMR scheme with logic partition (internal voter barriers);
//! * Fig. 4 — the three partitioned FIR variants (max / medium / min).
//!
//! For each figure the binary prints the corresponding word-level structure,
//! voter counts and partition report; for the small illustrative designs it
//! also emits Graphviz DOT to `target/figures/`.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin figures
//! ```

use std::fs;
use std::path::Path;
use tmr_bench::{fir_variants, markdown_table, synthesize};
use tmr_core::{apply_tmr, partition_report, TmrConfig};
use tmr_designs::FirFilter;
use tmr_synth::{lower, Design};

fn dot_of(design: &Design, path: &Path) {
    let netlist = lower(design).expect("lowering");
    fs::create_dir_all(path.parent().expect("figures directory")).expect("create figures dir");
    fs::write(path, netlist.to_dot()).expect("write DOT file");
}

fn main() {
    let out_dir = Path::new("target/figures");

    // ------------------------------------------------------------------
    // Fig. 1 / Fig. 3: basic TMR vs partitioned TMR on a 3-tap illustrative
    // filter (small enough that the DOT graph is readable).
    // ------------------------------------------------------------------
    println!("# Figure 1 — TMR scheme (voters only at the boundaries)\n");
    let small = FirFilter::new("fir3", vec![1, 2, 1], 4, 8).to_design();
    let fig1 = apply_tmr(&small, &TmrConfig::paper_p3()).unwrap();
    let report = partition_report(&fig1);
    println!("{fig1}");
    println!(
        "voter groups: {}, fabric voter nodes: {}, max partition: {} nodes, cross-domain pairs: {}\n",
        report.partition_count(),
        report.voter_nodes,
        report.max_partition_nodes(),
        report.total_cross_domain_pairs()
    );
    dot_of(&fig1, &out_dir.join("fig1_tmr_scheme.dot"));

    println!("# Figure 3 — TMR scheme with logic partition (internal voter barriers)\n");
    let fig3 = apply_tmr(&small, &TmrConfig::paper_p1()).unwrap();
    let report3 = partition_report(&fig3);
    println!("{fig3}");
    println!(
        "voter groups: {}, fabric voter nodes: {}, max partition: {} nodes, cross-domain pairs: {}\n",
        report3.partition_count(),
        report3.voter_nodes,
        report3.max_partition_nodes(),
        report3.total_cross_domain_pairs()
    );
    println!(
        "An upset bridging two domains inside one partition is voted out before it can\n\
         reach a second partition — the upset \"b\" of Fig. 1 becomes harmless in Fig. 3.\n"
    );
    dot_of(&fig3, &out_dir.join("fig3_tmr_partitioned.dot"));

    // ------------------------------------------------------------------
    // Fig. 2: the voted register with refresh.
    // ------------------------------------------------------------------
    println!("# Figure 2 — TMR register with voters and refresh\n");
    let mut reg_design = Design::new("voted_register");
    let d = reg_design.add_input("d", 9);
    let q = reg_design.add_register("q", d);
    reg_design.add_output("q", q);
    let fig2 = apply_tmr(&reg_design, &TmrConfig::paper_p3()).unwrap();
    let stats = fig2.stats();
    println!(
        "one 9-bit register becomes {} registers + {} voter nodes ({} voter LUT bits per bit of state)\n",
        stats.registers,
        stats.voters,
        stats.voters / 9
    );
    dot_of(&fig2, &out_dir.join("fig2_voted_register.dot"));

    // ------------------------------------------------------------------
    // Fig. 4: the three partitioned FIR variants.
    // ------------------------------------------------------------------
    println!("# Figure 4 — TMR digital filter schemes (11-tap, 9-bit FIR)\n");
    let mut rows = Vec::new();
    for (name, design) in fir_variants() {
        let stats = design.stats();
        let report = partition_report(&design);
        let mapped = synthesize(&design);
        let mapped_stats = mapped.stats();
        rows.push(vec![
            name,
            stats.multipliers.to_string(),
            stats.adders.to_string(),
            stats.registers.to_string(),
            stats.voters.to_string(),
            report.partition_count().to_string(),
            format!("{:.1}", report.mean_partition_nodes()),
            mapped_stats.luts.to_string(),
            mapped_stats.flip_flops.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "multipliers",
                "adders",
                "registers",
                "fabric voters",
                "voter partitions",
                "mean partition size",
                "mapped LUTs",
                "mapped FFs",
            ],
            &rows
        )
    );
    println!("DOT files for Figures 1–3 written to {}", out_dir.display());
}
