//! Regenerates Table 3 of the paper: the fault-injection campaign results
//! (injected faults, wrong answers, wrong-answer percentage) for the five FIR
//! variants.
//!
//! The number of injected faults per design is controlled by the `TMR_FAULTS`
//! environment variable (default 4000) and the stimulus length by
//! `TMR_CYCLES` (default 24). Campaigns run on the sharded parallel engine
//! (one shard per CPU core; override with `TMR_SHARDS`); results are
//! bit-identical to the sequential path for any shard count.
//!
//! ```text
//! TMR_FAULTS=4000 cargo run --release -p tmr-bench --bin table3
//! ```
//!
//! With `--json` the campaign results are emitted as a single JSON document
//! (shared serializer with `tmr-analyze`'s `CriticalityReport`) instead of
//! markdown.

use tmr_analyze::Json;
use tmr_bench::{
    campaign, campaign_json, cycles_from_env, faults_from_env, implement_fir_variants,
    json_requested, markdown_table,
};

fn main() {
    let faults = faults_from_env();
    let cycles = cycles_from_env();
    let json = json_requested();
    let start = std::time::Instant::now();
    let (device, implementations) = implement_fir_variants(1);

    if json {
        let mut designs = Vec::new();
        for implementation in &implementations {
            let result = campaign(&device, implementation, faults, cycles);
            designs.push(campaign_json(&implementation.name, &result));
            eprintln!(
                "  {} done ({:.1} s elapsed)",
                implementation.name,
                start.elapsed().as_secs_f64()
            );
        }
        let document = Json::object([
            ("table", Json::str("table3")),
            ("faults", Json::from(faults)),
            ("cycles", Json::from(cycles)),
            (
                "device",
                Json::str(format!("{}x{}", device.cols(), device.rows())),
            ),
            ("designs", Json::array(designs)),
        ]);
        println!("{document}");
        return;
    }

    println!("# Table 3 — Fault injection campaign results");
    println!(
        "({} faults per design, {} stimulus cycles per fault, device {}x{})\n",
        faults,
        cycles,
        device.cols(),
        device.rows()
    );

    let mut rows = Vec::new();
    for implementation in &implementations {
        let result = campaign(&device, implementation, faults, cycles);
        rows.push(vec![
            implementation.name.clone(),
            result.fault_list_size.to_string(),
            result.injected().to_string(),
            result.wrong_answers().to_string(),
            format!("{:.2}", result.wrong_answer_percent()),
            format!("{:.0} %", 100.0 * result.cross_domain_error_fraction()),
        ]);
        eprintln!(
            "  {} done ({:.1} s elapsed)",
            implementation.name,
            start.elapsed().as_secs_f64()
        );
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Fault list size",
                "Injected faults [#]",
                "Wrong answer [#]",
                "Wrong answer [%]",
                "cross-domain among errors",
            ],
            &rows
        )
    );

    println!("Paper (hardware fault injection on the XC2S200E) for comparison:");
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Injected faults [#]",
                "Wrong answer [#]",
                "Wrong answer [%]"
            ],
            &[
                vec![
                    "standard".into(),
                    "5,100".into(),
                    "4,952".into(),
                    "97.10".into()
                ],
                vec![
                    "tmr_p1".into(),
                    "17,515".into(),
                    "706".into(),
                    "4.03".into()
                ],
                vec![
                    "tmr_p2".into(),
                    "19,401".into(),
                    "190".into(),
                    "0.98".into()
                ],
                vec![
                    "tmr_p3".into(),
                    "18,501".into(),
                    "289".into(),
                    "1.56".into()
                ],
                vec![
                    "tmr_p3_nv".into(),
                    "18,000".into(),
                    "2,268".into(),
                    "12.60".into()
                ],
            ]
        )
    );
}
