//! Regenerates Table 3 of the paper: the fault-injection campaign results
//! (injected faults, wrong answers, wrong-answer percentage) for the five FIR
//! variants — one [`Sweep`](tmr_fpga::Sweep) call over the staged pipeline.
//!
//! The number of injected faults per design is controlled by the `TMR_FAULTS`
//! environment variable (default 4000), the stimulus length by `TMR_CYCLES`
//! (default 24) and the worker shards by `TMR_SHARDS` (default: one per CPU
//! core; results are bit-identical for any shard count). Setting `TMR_CI`
//! (e.g. `0.005`) stops each campaign early once the wrong-answer rate's
//! 95 % confidence half-width is below that bound. `TMR_CACHE_DIR=dir`
//! attaches a disk artifact store: a re-run over the same directory serves
//! every implementation and campaign from disk (the stderr perf line shows
//! the disk hit/miss counters).
//!
//! ```text
//! TMR_FAULTS=4000 cargo run --release -p tmr-bench --bin table3
//! ```
//!
//! With `--json` the campaign results are emitted as a single JSON document
//! (shared serializer in `tmr_bench::report`) instead of markdown; either
//! way the artifact-cache counters are reported, documenting the work the
//! sweep reused across variants.

use tmr_analyze::Json;
use tmr_bench::report::{emit_stderr, flush_trace, markdown_table, sweep_campaign_document};
use tmr_bench::{campaign_from_env, cycles_from_env, faults_from_env, json_requested, paper_sweep};

fn main() {
    let faults = faults_from_env();
    let cycles = cycles_from_env();
    let json = json_requested();
    let start = std::time::Instant::now();

    // One sweep call: implement all five variants (shared artifacts) and run
    // the campaign on each.
    let report = paper_sweep(1)
        .campaign(campaign_from_env())
        .run()
        .expect("the paper variants implement on the auto-sized device");
    emit_stderr("sweep done", Some(start.elapsed()), &report);
    flush_trace();

    if json {
        let document = sweep_campaign_document(
            "table3",
            &report,
            vec![
                ("faults", Json::from(faults)),
                ("cycles", Json::from(cycles)),
            ],
        );
        println!("{document}");
        return;
    }

    println!("# Table 3 — Fault injection campaign results");
    println!(
        "({} faults per design, {} stimulus cycles per fault, device {}x{})\n",
        faults,
        cycles,
        report.device.cols(),
        report.device.rows()
    );

    let rows: Vec<Vec<String>> = report
        .campaigns()
        .map(|(name, result)| {
            vec![
                name.to_string(),
                result.fault_list_size.to_string(),
                result.injected().to_string(),
                result.wrong_answers().to_string(),
                format!("{:.2}", result.wrong_answer_percent()),
                format!("{:.0} %", 100.0 * result.cross_domain_error_fraction()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Fault list size",
                "Injected faults [#]",
                "Wrong answer [#]",
                "Wrong answer [%]",
                "cross-domain among errors",
            ],
            &rows
        )
    );

    println!("Paper (hardware fault injection on the XC2S200E) for comparison:");
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Injected faults [#]",
                "Wrong answer [#]",
                "Wrong answer [%]"
            ],
            &[
                vec![
                    "standard".into(),
                    "5,100".into(),
                    "4,952".into(),
                    "97.10".into()
                ],
                vec![
                    "tmr_p1".into(),
                    "17,515".into(),
                    "706".into(),
                    "4.03".into()
                ],
                vec![
                    "tmr_p2".into(),
                    "19,401".into(),
                    "190".into(),
                    "0.98".into()
                ],
                vec![
                    "tmr_p3".into(),
                    "18,501".into(),
                    "289".into(),
                    "1.56".into()
                ],
                vec![
                    "tmr_p3_nv".into(),
                    "18,000".into(),
                    "2,268".into(),
                    "12.60".into()
                ],
            ]
        )
    );
}
