//! The multi-bit-upset table (beyond the paper): wrong-answer rate of the
//! five FIR variants under the generalized fault models — per MBU cluster
//! size (geometry-aware adjacent-bit pairs and 2×2 tiles) and per number of
//! upsets accumulated between two configuration scrubs.
//!
//! The paper's campaign flips one configuration bit per experiment; this
//! table answers the two questions that model cannot: *how fast does TMR
//! degrade as one strike grows into a cluster?* and *how many accumulated
//! upsets per scrub interval does each voter partitioning survive?* (cf.
//! Hoque et al. 2018 on the scrub-interval/partitioning trade-off).
//!
//! Every model runs as one [`Sweep`](tmr_fpga::Sweep) over the **same shared
//! artifact cache**: the five implementations, golden traces and device are
//! computed once, only the campaigns differ per model.
//!
//! ```text
//! TMR_FAULTS=2000 cargo run --release -p tmr-bench --bin table_mbu
//! ```
//!
//! Environment knobs as for `table3` (`TMR_FAULTS`, `TMR_CYCLES`,
//! `TMR_SHARDS`, `TMR_CI`, `TMR_CACHE_DIR`); `--json` emits one
//! machine-readable document (shared serializer in `tmr_bench::report`)
//! instead of markdown.

use tmr_analyze::Json;
use tmr_arch::MbuPattern;
use tmr_bench::report::{
    campaign_json, device_json, emit_stderr, flush_trace, markdown_table, sim_json,
};
use tmr_bench::{campaign_from_env, cycles_from_env, faults_from_env, json_requested, paper_sweep};
use tmr_faultsim::{FaultModel, SimStats};
use tmr_fpga::{ArtifactCache, SweepReport};

/// The cluster-size axis: every geometric MBU pattern, smallest first.
fn mbu_models() -> Vec<FaultModel> {
    MbuPattern::ALL
        .into_iter()
        .map(|pattern| FaultModel::Mbu { pattern })
        .collect()
}

/// The scrub-interval axis: upsets accumulating between two scrubs.
fn accumulate_models() -> Vec<FaultModel> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|upsets_per_scrub| FaultModel::Accumulate { upsets_per_scrub })
        .collect()
}

/// Runs one sweep per model against the shared cache and pairs each with its
/// label.
fn run_axis(
    models: &[FaultModel],
    cache: &std::sync::Arc<ArtifactCache>,
) -> Vec<(String, SweepReport)> {
    models
        .iter()
        .map(|model| {
            let start = std::time::Instant::now();
            let report = paper_sweep(1)
                .cache(cache.clone())
                .campaign(campaign_from_env().fault_model(*model))
                .run()
                .expect("the paper variants implement on the auto-sized device");
            emit_stderr(&format!("{model}: swept"), Some(start.elapsed()), &report);
            (model.label(), report)
        })
        .collect()
}

/// One markdown table: designs as rows, one wrong-answer-% column per model.
fn axis_table(title: &str, axis: &str, reports: &[(String, SweepReport)]) -> String {
    let mut headers: Vec<&str> = vec!["Design"];
    for (label, _) in reports {
        headers.push(label);
    }
    let first = &reports[0].1;
    let rows: Vec<Vec<String>> = first
        .variants
        .iter()
        .enumerate()
        .map(|(index, variant)| {
            let mut row = vec![variant.name.clone()];
            for (_, report) in reports {
                let campaign = report.variants[index]
                    .campaign
                    .as_ref()
                    .expect("every sweep ran a campaign");
                row.push(format!("{:.2}", campaign.wrong_answer_percent()));
            }
            row
        })
        .collect();
    format!(
        "## {title}\n(wrong answer [%] per {axis})\n\n{}",
        markdown_table(&headers, &rows)
    )
}

/// The JSON section of one axis: per model label, per-design campaign
/// results.
fn axis_json(reports: &[(String, SweepReport)]) -> Json {
    Json::array(reports.iter().map(|(label, report)| {
        Json::object([
            ("model", Json::str(label)),
            (
                "designs",
                Json::array(
                    report
                        .campaigns()
                        .map(|(name, result)| campaign_json(name, result)),
                ),
            ),
        ])
    }))
}

fn main() {
    let faults = faults_from_env();
    let cycles = cycles_from_env();
    let json = json_requested();

    let cache = ArtifactCache::shared();
    let mbu = run_axis(&mbu_models(), &cache);
    let accumulated = run_axis(&accumulate_models(), &cache);
    let stats = cache.stats();
    eprintln!("  shared artifact cache over both axes: {stats}");
    flush_trace();

    if json {
        // Merge the simulator counters over both axes' sweeps — one `perf`
        // object for the whole document, mirroring the sweep serializers.
        let mut sim = SimStats::default();
        for (_, report) in mbu.iter().chain(accumulated.iter()) {
            sim.merge(&report.sim_stats());
        }
        let document = Json::object([
            ("table", Json::str("table_mbu")),
            ("faults", Json::from(faults)),
            ("cycles", Json::from(cycles)),
            ("device", device_json(&mbu[0].1)),
            (
                "perf",
                Json::object([
                    (
                        "cache",
                        Json::object([
                            ("hits", Json::from(stats.hits as usize)),
                            ("misses", Json::from(stats.misses as usize)),
                            ("entries", Json::from(stats.entries)),
                        ]),
                    ),
                    ("sim", sim_json(&sim)),
                ]),
            ),
            ("mbu", axis_json(&mbu)),
            ("accumulate", axis_json(&accumulated)),
        ]);
        println!("{document}");
        return;
    }

    println!("# Multi-bit upsets and scrub intervals — beyond the paper's Table 3");
    println!(
        "({} faults per design and model, {} stimulus cycles per fault, device {}x{})\n",
        faults,
        cycles,
        mbu[0].1.device.cols(),
        mbu[0].1.device.rows()
    );
    println!(
        "{}",
        axis_table(
            "Wrong-answer rate vs. MBU cluster size",
            "cluster shape",
            &mbu
        )
    );
    println!(
        "{}",
        axis_table(
            "Wrong-answer rate vs. accumulated upsets per scrub",
            "upsets accumulated between two configuration scrubs",
            &accumulated
        )
    );
}
