//! Regenerates Table 2 of the paper: area, design-related configuration bits
//! and estimated performance of the five FIR filter variants.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin table2
//! ```

use tmr_bench::{markdown_table, paper_sweep};

fn main() {
    let start = std::time::Instant::now();
    let report = paper_sweep(1)
        .run()
        .expect("the paper variants implement on the auto-sized device");
    let device = &report.device;
    println!(
        "# Table 2 — TMR partitioned FIR designs on a {}x{} {}-track island FPGA",
        device.cols(),
        device.rows(),
        device.params().tracks
    );
    println!(
        "(device: {} LUT sites, {} configuration bits; implementation time {:.1} s)\n",
        device.lut_sites().len(),
        device.config_layout().bit_count(),
        start.elapsed().as_secs_f64()
    );

    let rows: Vec<Vec<String>> = report
        .variants
        .iter()
        .map(|variant| {
            vec![
                variant.name.clone(),
                variant.resources.slices.to_string(),
                variant.bits.routing_bits.to_string(),
                variant.bits.clb_mux_bits.to_string(),
                variant.bits.lut_bits.to_string(),
                variant.bits.ff_bits.to_string(),
                format!("{:.0} MHz", variant.resources.fmax_mhz),
                format!("{:.1} %", 100.0 * variant.bits.routing_fraction()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Area (#slices)",
                "#routing bits",
                "#CLB mux bits",
                "#LUT bits",
                "#FF bits",
                "Est. performance",
                "routing fraction",
            ],
            &rows
        )
    );

    println!("Paper (XC2S200E, Xilinx ISE) for comparison:");
    println!(
        "{}",
        markdown_table(
            &[
                "Design",
                "Area (#slices)",
                "#routing bits",
                "#LUT bits",
                "#FF bits",
                "Est. performance"
            ],
            &[
                vec![
                    "standard".into(),
                    "150".into(),
                    "42,953".into(),
                    "9,600".into(),
                    "722".into(),
                    "154 MHz".into()
                ],
                vec![
                    "tmr_p1".into(),
                    "560".into(),
                    "138,453".into(),
                    "35,840".into(),
                    "3,498".into(),
                    "123 MHz".into()
                ],
                vec![
                    "tmr_p2".into(),
                    "504".into(),
                    "161,568".into(),
                    "32,256".into(),
                    "3,492".into(),
                    "137 MHz".into()
                ],
                vec![
                    "tmr_p3".into(),
                    "498".into(),
                    "151,994".into(),
                    "31,872".into(),
                    "3,447".into(),
                    "153 MHz".into()
                ],
                vec![
                    "tmr_p3_nv".into(),
                    "476".into(),
                    "150,521".into(),
                    "30,464".into(),
                    "2,141".into(),
                    "154 MHz".into()
                ],
            ]
        )
    );
}
