//! The campaign daemon: accepts fault-injection jobs over NDJSON and runs
//! them concurrently, resumably, against a shared artifact store.
//!
//! ```text
//! # stdin/stdout mode (used by pipelines and the CI smoke run):
//! echo '{"cmd":"submit","spec":{"design":"counter:4","faults":200}}' \
//!     | cargo run --release -p tmr-bench --bin tmr-campaignd
//!
//! # daemon mode on a Unix socket:
//! TMR_CACHE_DIR=/tmp/tmr-cache \
//!     cargo run --release -p tmr-bench --bin tmr-campaignd -- \
//!     --socket /tmp/tmr-campaignd.sock --workers 4
//! ```
//!
//! Options:
//!
//! * `--socket <path>` — serve connections on a Unix domain socket instead
//!   of stdin/stdout; removed again on shutdown.
//! * `--workers <n>` — worker threads sharing the job queue (default 2).
//! * `--cache-dir <dir>` — disk artifact store; falls back to the
//!   `TMR_CACHE_DIR` environment variable, and to memory-only operation
//!   when neither is set (jobs then do not survive the process).
//!
//! One request per line; see `tmr_serve::protocol` for the wire format. A
//! `{"cmd":"shutdown"}` request stops the daemon after the in-flight
//! batches; interrupted jobs keep their persisted outcome prefixes and
//! resume byte-identically when re-submitted over the same store.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use tmr_serve::{serve_stdio, serve_unix, ServiceConfig};
use tmr_store::Store;

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut cache_dir: Option<PathBuf> = None;

    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--socket" => socket = arguments.next().map(PathBuf::from),
            "--workers" => {
                workers = match arguments.next().and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--workers needs a number"),
                }
            }
            "--cache-dir" => cache_dir = arguments.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "usage: tmr-campaignd [--socket <path>] [--workers <n>] [--cache-dir <dir>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let store = match cache_dir {
        Some(dir) => match Store::open(&dir) {
            Ok(store) => Some(Arc::new(store)),
            Err(err) => {
                eprintln!(
                    "tmr-campaignd: cannot open store at {}: {err}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        },
        None => Store::from_env(),
    };
    match &store {
        Some(store) => eprintln!("tmr-campaignd: store at {}", store.root().display()),
        None => eprintln!("tmr-campaignd: no store configured; jobs will not survive restarts"),
    }
    let config = ServiceConfig { workers, store };

    match socket {
        Some(path) => {
            eprintln!("tmr-campaignd: listening on {}", path.display());
            if let Err(err) = serve_unix(&path, config) {
                eprintln!("tmr-campaignd: {err}");
                return ExitCode::FAILURE;
            }
        }
        None => serve_stdio(config),
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    eprintln!("tmr-campaignd: {message}");
    eprintln!("usage: tmr-campaignd [--socket <path>] [--workers <n>] [--cache-dir <dir>]");
    ExitCode::FAILURE
}
