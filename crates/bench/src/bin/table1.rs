//! Regenerates Table 1 of the paper: the qualitative taxonomy of upset
//! locations, their effects and their correction, as implemented by the
//! `tmr-faultsim` classifier.
//!
//! ```text
//! cargo run --release -p tmr-bench --bin table1
//! ```

use tmr_bench::markdown_table;
use tmr_faultsim::FaultClass;

fn main() {
    println!("# Table 1 — Upset analysis in the Triple Modular Redundancy approach\n");
    let rows = vec![
        vec![
            "LUT".to_string(),
            "Modification of the combinational logic (truth-table bit flip)".to_string(),
            "Error confined to one redundant part; no TMR output error".to_string(),
            "By scrubbing".to_string(),
        ],
        vec![
            "Routing".to_string(),
            "Connection (bridge/antenna/conflict) or disconnection (open) between signals"
                .to_string(),
            "Error in one redundant part, or in more than one part with a TMR output error"
                .to_string(),
            "By scrubbing".to_string(),
        ],
        vec![
            "CLB customization (MUX)".to_string(),
            "Connection or disconnection between signals inside the same CLB".to_string(),
            "Error in one redundant part, or in more than one part with a TMR output error"
                .to_string(),
            "By scrubbing".to_string(),
        ],
        vec![
            "Flip-flops".to_string(),
            "Modification of the sequential logic (initialisation bits)".to_string(),
            "Error in one redundant part; no TMR output error".to_string(),
            "By design modification (voted registers with refresh)".to_string(),
        ],
    ];
    println!(
        "{}",
        markdown_table(
            &[
                "Upset location",
                "Upset effect",
                "Consequences",
                "Upset correction"
            ],
            &rows
        )
    );

    println!("Fault classes implemented by the classifier (Table 4 row order):");
    for class in FaultClass::ALL {
        let scope = if class.is_general_routing() {
            "general routing"
        } else {
            "CLB logic and routing"
        };
        println!("  - {:<15} ({scope})", class.label());
    }
}
