//! Criterion benchmarks of the individual flow stages on reduced designs:
//! TMR transformation, synthesis, placement, routing, bitstream generation and
//! fault-injection throughput. One group per paper table/figure family.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tmr_arch::Device;
use tmr_core::{apply_tmr, estimate_resources, partition_report, TmrConfig};
use tmr_designs::FirFilter;
use tmr_faultsim::{classify_bit, run_campaign, CampaignOptions, FaultList};
use tmr_pnr::{place, place_and_route, route, PlacerOptions, RouterOptions};
use tmr_sim::{random_vectors, FaultOverlay, Simulator};
use tmr_synth::{lower, optimize, techmap};

/// The reduced FIR used by all benches (5 taps, 6-bit) keeps `cargo bench`
/// runtimes in seconds while exercising every code path of the full flow.
fn small_tmr_netlist(config: &TmrConfig) -> tmr_netlist::Netlist {
    let design = FirFilter::small_filter().to_design();
    let tmr = apply_tmr(&design, config).expect("unprotected input design");
    techmap(&optimize(&lower(&tmr).expect("lowering"))).expect("mapping")
}

/// Figure 4 family: the TMR transformation and partition analysis.
fn bench_transform(c: &mut Criterion) {
    let design = FirFilter::paper_filter().to_design();
    let mut group = c.benchmark_group("figure4_transform");
    for config in TmrConfig::paper_presets() {
        group.bench_function(format!("apply_tmr_{}", config.label), |b| {
            b.iter(|| apply_tmr(&design, &config).expect("transform"))
        });
    }
    let tmr = apply_tmr(&design, &TmrConfig::paper_p2()).expect("transform");
    group.bench_function("partition_report_p2", |b| b.iter(|| partition_report(&tmr)));
    group.finish();
}

/// Table 2 family: synthesis, placement, routing and area estimation.
fn bench_implementation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_implementation");
    group.sample_size(10);
    let design = FirFilter::small_filter().to_design();
    let tmr = apply_tmr(&design, &TmrConfig::paper_p2()).expect("transform");
    group.bench_function("synthesize_small_tmr_p2", |b| {
        b.iter(|| techmap(&optimize(&lower(&tmr).expect("lowering"))).expect("mapping"))
    });

    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(16, 16);
    group.bench_function("place_small_tmr_p2", |b| {
        b.iter(|| place(&device, &netlist, &PlacerOptions::default()).expect("placement"))
    });
    let placement = place(&device, &netlist, &PlacerOptions::default()).expect("placement");
    group.bench_function("route_small_tmr_p2", |b| {
        b.iter(|| route(&device, &netlist, &placement, &RouterOptions::default()).expect("routing"))
    });
    group.bench_function("estimate_resources", |b| b.iter(|| estimate_resources(&netlist)));
    group.finish();
}

/// Table 3 / Table 4 family: fault-list construction, classification,
/// simulation and campaign throughput.
fn bench_fault_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fault_injection");
    group.sample_size(10);
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(16, 16);
    let routed = place_and_route(&device, &netlist, 1).expect("place and route");

    group.bench_function("fault_list_build", |b| {
        b.iter(|| FaultList::build(&device, &routed))
    });

    let list = FaultList::build(&device, &routed);
    let sample = list.sample(256, 1);
    group.bench_function("classify_256_bits", |b| {
        b.iter(|| {
            sample
                .iter()
                .map(|&bit| classify_bit(&device, &routed, bit))
                .count()
        })
    });

    let simulator = Simulator::new(routed.netlist()).expect("acyclic");
    let vectors = random_vectors(routed.netlist(), 24, 7);
    group.bench_function("simulate_24_cycles", |b| {
        b.iter(|| simulator.run(&vectors, &FaultOverlay::none()))
    });

    group.bench_function("campaign_100_faults", |b| {
        b.iter_batched(
            || (),
            |_| {
                run_campaign(
                    &device,
                    &routed,
                    &CampaignOptions {
                        faults: 100,
                        cycles: 12,
                        ..CampaignOptions::default()
                    },
                )
                .expect("campaign")
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_transform, bench_implementation, bench_fault_injection);
criterion_main!(benches);
