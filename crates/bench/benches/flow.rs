//! Criterion benchmarks of the individual flow stages on reduced designs:
//! TMR transformation, synthesis, placement, routing, bitstream generation and
//! fault-injection throughput. One group per paper table/figure family.
//!
//! The `campaign_throughput` group is the headline number: it measures
//! faults/second on the FIR `TMR_p2` design for the sequential engine and for
//! the sharded parallel engine at 2, 4 and 8 shards. To record a baseline:
//!
//! ```text
//! cargo bench -p tmr-bench --bench flow | tee target/bench-baseline.txt
//! ```
//!
//! and compare the `thrpt:` columns of `campaign_throughput/*` lines between
//! runs (the parallel/4-shard row is expected to be ≥ 2× the sequential row
//! on a 4-core machine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tmr_analyze::{PruneWith, StaticAnalysis};
use tmr_arch::{Device, MbuPattern};
use tmr_core::pipeline::ArtifactCache;
use tmr_core::{apply_tmr, estimate_resources, partition_report, TmrConfig};
use tmr_designs::FirFilter;
use tmr_faultsim::{classify_bit, CampaignBuilder, FaultList, SimBackend};
use tmr_fpga::Sweep;
use tmr_pnr::{place, place_and_route, route, PlacerOptions, RoutedDesign, RouterOptions};
use tmr_sim::{FaultOverlay, Simulator, Stimulus};

/// The reduced FIR used by all benches (5 taps, 6-bit) keeps `cargo bench`
/// runtimes in seconds while exercising every code path of the full flow.
fn small_tmr_netlist(config: &TmrConfig) -> tmr_netlist::Netlist {
    let design = FirFilter::small_filter().to_design();
    let tmr = apply_tmr(&design, config).expect("unprotected input design");
    tmr_synth::techmap(&tmr_synth::optimize(
        &tmr_synth::lower(&tmr).expect("lowering"),
    ))
    .expect("mapping")
}

/// Figure 4 family: the TMR transformation and partition analysis.
fn bench_transform(c: &mut Criterion) {
    let design = FirFilter::paper_filter().to_design();
    let mut group = c.benchmark_group("figure4_transform");
    for config in TmrConfig::paper_presets() {
        group.bench_function(format!("apply_tmr_{}", config.label), |b| {
            b.iter(|| apply_tmr(&design, &config).expect("transform"))
        });
    }
    let tmr = apply_tmr(&design, &TmrConfig::paper_p2()).expect("transform");
    group.bench_function("partition_report_p2", |b| b.iter(|| partition_report(&tmr)));
    group.finish();
}

/// Table 2 family: synthesis, placement, routing and area estimation.
fn bench_implementation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_implementation");
    group.sample_size(10);
    let design = FirFilter::small_filter().to_design();
    let tmr = apply_tmr(&design, &TmrConfig::paper_p2()).expect("transform");
    group.bench_function("synthesize_small_tmr_p2", |b| {
        b.iter(|| {
            tmr_synth::techmap(&tmr_synth::optimize(
                &tmr_synth::lower(&tmr).expect("lowering"),
            ))
            .expect("mapping")
        })
    });

    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20); // 800 LUT sites; small TMR_p2 needs 777
    group.bench_function("place_small_tmr_p2", |b| {
        b.iter(|| place(&device, &netlist, &PlacerOptions::default()).expect("placement"))
    });
    let placement = place(&device, &netlist, &PlacerOptions::default()).expect("placement");
    group.bench_function("route_small_tmr_p2", |b| {
        b.iter(|| route(&device, &netlist, &placement, &RouterOptions::default()).expect("routing"))
    });
    group.bench_function("estimate_resources", |b| {
        b.iter(|| estimate_resources(&netlist))
    });
    group.finish();
}

/// PnR throughput: end-to-end place+route on the small FIR `TMR_p2` for the
/// sequential router (`workers: 1`, the `TMR_ROUTE=seq` oracle) and the
/// deterministic parallel negotiation at 4 workers. The two configurations
/// are asserted to produce identical `RouteTree`s and byte-identical
/// bitstreams *before* anything is measured — the parallel row is only a
/// performance claim once the identity claim holds.
fn bench_pnr_throughput(c: &mut Criterion) {
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20); // 800 LUT sites; small TMR_p2 needs 777
    let sequential = RouterOptions {
        workers: 1,
        ..RouterOptions::default()
    };
    let parallel = RouterOptions {
        workers: 4,
        ..RouterOptions::default()
    };

    let placement = place(&device, &netlist, &PlacerOptions::default()).expect("placement");
    let (seq_routes, telemetry) =
        tmr_pnr::route_with_telemetry(&device, &netlist, &placement, &sequential);
    let seq_routes = seq_routes.expect("routing");
    let par_routes = route(&device, &netlist, &placement, &parallel).expect("routing");
    assert_eq!(
        seq_routes, par_routes,
        "parallel negotiation must produce the sequential oracle's RouteTrees"
    );
    let seq_design =
        RoutedDesign::assemble(&device, &netlist, placement.clone(), seq_routes.clone());
    let par_design = RoutedDesign::assemble(&device, &netlist, placement.clone(), par_routes);
    assert_eq!(
        seq_design.bitstream(),
        par_design.bitstream(),
        "parallel negotiation must produce a byte-identical bitstream"
    );
    eprintln!(
        "pnr_throughput: {} nets routed in {} iterations, {} nodes expanded, {:.1} ms (seq)",
        seq_routes.len(),
        telemetry.iteration_count(),
        telemetry.total_nodes_expanded(),
        telemetry.total_elapsed().as_secs_f64() * 1e3,
    );

    let mut group = c.benchmark_group("pnr_throughput");
    group.sample_size(10);
    group.bench_function("place_route_seq", |b| {
        b.iter(|| {
            let placement = place(&device, &netlist, &PlacerOptions::default()).expect("placement");
            route(&device, &netlist, &placement, &sequential).expect("routing")
        })
    });
    group.bench_function("place_route_parallel_4", |b| {
        b.iter(|| {
            let placement = place(&device, &netlist, &PlacerOptions::default()).expect("placement");
            route(&device, &netlist, &placement, &parallel).expect("routing")
        })
    });
    group.finish();
}

/// Table 3 / Table 4 family: fault-list construction, classification and
/// simulation building blocks.
fn bench_fault_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fault_injection");
    group.sample_size(10);
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20); // 800 LUT sites; small TMR_p2 needs 777
    let routed = place_and_route(&device, &netlist, 1).expect("place and route");

    group.bench_function("fault_list_build", |b| {
        b.iter(|| FaultList::build(&device, &routed))
    });

    let list = FaultList::build(&device, &routed);
    let sample = list.sample(256, 1);
    group.bench_function("classify_256_bits", |b| {
        b.iter(|| {
            sample
                .iter()
                .filter(|&&bit| !classify_bit(&device, &routed, bit).overlay.is_empty())
                .count()
        })
    });

    let simulator = Simulator::new(routed.netlist()).expect("acyclic");
    let stimulus = Stimulus::random(routed.netlist(), 24, 7);
    group.bench_function("simulate_24_cycles", |b| {
        b.iter(|| simulator.run_stimulus(&stimulus, &FaultOverlay::none()))
    });
    group.finish();
}

/// Campaign throughput (faults/second): the sequential engine against the
/// sharded parallel engine on the FIR `TMR_p2` design.
fn bench_campaign_throughput(c: &mut Criterion) {
    const FAULTS: usize = 600;
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20);
    let routed: RoutedDesign = place_and_route(&device, &netlist, 1).expect("place and route");
    let campaign = CampaignBuilder::new().faults(FAULTS).cycles(12);

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FAULTS as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            campaign
                .clone()
                .sequential()
                .run(&device, &routed)
                .expect("campaign")
        })
    });
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("parallel_{shards}_shards"), |b| {
            b.iter(|| {
                campaign
                    .clone()
                    .shards(shards)
                    .run(&device, &routed)
                    .expect("campaign")
            })
        });
    }

    // Statically pruned campaign: the same sampled faults, but only the
    // statically-possibly-observable bits are simulated. The eprintln records
    // the reduction so bench logs document the pruning factor alongside the
    // throughput numbers.
    let analysis = StaticAnalysis::run(&device, &routed);
    let pruned_campaign = campaign.clone().sequential().prune_with(&analysis);
    let unpruned = campaign
        .sequential()
        .run(&device, &routed)
        .expect("campaign");
    let pruned = pruned_campaign.run(&device, &routed).expect("campaign");
    assert_eq!(
        pruned.outcomes, unpruned.outcomes,
        "static pruning must not change campaign outcomes"
    );
    eprintln!(
        "campaign_throughput/pruned: {} of {} sampled faults simulated \
         (unpruned simulates {}; {} observable of {} design-related bits)",
        pruned.simulated,
        pruned.injected(),
        unpruned.simulated,
        analysis.observable_bits().len(),
        analysis.design_related(),
    );
    group.bench_function("pruned_sequential", |b| {
        b.iter(|| pruned_campaign.run(&device, &routed).expect("campaign"))
    });
    group.finish();
}

/// Simulator-backend throughput (faults/second): the interpreting oracle,
/// the event-driven compiled engine and the always-full-level compiled
/// engine (`TMR_SIM=compiled-full`) on the *same* sequential 600-fault
/// campaign over the FIR `TMR_p2` design. All three backends are asserted
/// to produce bit-identical `CampaignResult`s before anything is measured,
/// the `SimStats` counters are asserted to show the fast paths actually ran
/// (levels skipped, >64-lane words), and the one-shot speedups are logged
/// for the CI bench output.
fn bench_sim_throughput(c: &mut Criterion) {
    const FAULTS: usize = 600;
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20);
    let routed: RoutedDesign = place_and_route(&device, &netlist, 1).expect("place and route");
    let campaign = CampaignBuilder::new()
        .faults(FAULTS)
        .cycles(12)
        .sequential();
    let interpreter = campaign.clone().backend(SimBackend::Interpreter);
    let compiled = campaign.clone().backend(SimBackend::Compiled);
    let compiled_full = campaign.backend(SimBackend::CompiledFull);

    let start = std::time::Instant::now();
    let interpreter_result = interpreter.run(&device, &routed).expect("campaign");
    let interpreter_elapsed = start.elapsed();
    let start = std::time::Instant::now();
    let compiled_result = compiled.run(&device, &routed).expect("campaign");
    let compiled_elapsed = start.elapsed();
    let start = std::time::Instant::now();
    let full_result = compiled_full.run(&device, &routed).expect("campaign");
    let full_elapsed = start.elapsed();
    assert_eq!(
        compiled_result, interpreter_result,
        "the compiled engine must be bit-identical to the interpreter"
    );
    assert_eq!(
        full_result, interpreter_result,
        "the always-full-level engine must be bit-identical to the interpreter"
    );
    // The observability counters prove the fast paths ran instead of
    // trusting wall-clock anecdotes: the event-driven scheduler skipped
    // clean levels, and at least one word batch ran wider than 64 lanes.
    let stats = compiled_result.stats;
    assert!(
        stats.levels_skipped > 0,
        "event-driven scheduling must skip clean levels: {stats}"
    );
    assert!(
        stats.max_lanes_per_word > 64,
        "at least one word batch must run wider than 64 lanes: {stats}"
    );
    assert_eq!(
        full_result.stats.levels_skipped, 0,
        "the always-full-level engine must not skip levels"
    );
    eprintln!(
        "sim_throughput: interpreter {:.3} s, compiled {:.3} s ({:.1}x), \
         compiled-full {:.3} s ({:.1}x vs event-driven) — {} faults, {} simulated",
        interpreter_elapsed.as_secs_f64(),
        compiled_elapsed.as_secs_f64(),
        interpreter_elapsed.as_secs_f64() / compiled_elapsed.as_secs_f64(),
        full_elapsed.as_secs_f64(),
        full_elapsed.as_secs_f64() / compiled_elapsed.as_secs_f64(),
        FAULTS,
        compiled_result.simulated,
    );
    eprintln!("sim_throughput/compiled stats: {stats}");

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FAULTS as u64));
    group.bench_function("interpreter", |b| {
        b.iter(|| interpreter.run(&device, &routed).expect("campaign"))
    });
    group.bench_function("compiled_packed", |b| {
        b.iter(|| compiled.run(&device, &routed).expect("campaign"))
    });
    group.bench_function("compiled_full", |b| {
        b.iter(|| compiled_full.run(&device, &routed).expect("campaign"))
    });
    group.finish();
}

/// Multi-bit fault-model throughput (faults/second): the generalized fault
/// models on the FIR `TMR_p2` design — one row per MBU cluster shape and per
/// accumulated-upsets depth, against the single-bit baseline of
/// `campaign_throughput`. The pruned row documents that the analyzer's
/// cluster-aware pruning stays transparent for multi-bit faults (asserted
/// bit-identical before measuring).
fn bench_mbu_throughput(c: &mut Criterion) {
    const FAULTS: usize = 400;
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20);
    let routed: RoutedDesign = place_and_route(&device, &netlist, 1).expect("place and route");
    let campaign = CampaignBuilder::new().faults(FAULTS).cycles(12);

    let mut group = c.benchmark_group("mbu_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FAULTS as u64));
    for pattern in [
        MbuPattern::PairInFrame,
        MbuPattern::PairAcrossFrames,
        MbuPattern::Tile2x2,
    ] {
        let configured = campaign.clone().mbu(pattern);
        group.bench_function(format!("mbu_{pattern}"), |b| {
            b.iter(|| configured.run(&device, &routed).expect("campaign"))
        });
    }
    for upsets_per_scrub in [2usize, 4, 8] {
        let configured = campaign.clone().accumulate(upsets_per_scrub);
        group.bench_function(format!("accumulate_{upsets_per_scrub}"), |b| {
            b.iter(|| configured.run(&device, &routed).expect("campaign"))
        });
    }

    // Cluster-aware pruning: same outcomes, fewer simulations, faster. Both
    // rows below run sequentially so the pruning speedup is like-for-like
    // (the parallel mbu_2x2 row above is a different axis).
    let analysis = StaticAnalysis::run(&device, &routed);
    let mbu = campaign.clone().mbu(MbuPattern::Tile2x2).sequential();
    let unpruned = mbu.clone().run(&device, &routed).expect("campaign");
    let pruned_campaign = mbu.clone().prune_with(&analysis);
    let pruned = pruned_campaign.run(&device, &routed).expect("campaign");
    assert_eq!(
        pruned.outcomes, unpruned.outcomes,
        "cluster-aware pruning must not change campaign outcomes"
    );
    eprintln!(
        "mbu_throughput/pruned: {} of {} 2x2-cluster faults simulated (unpruned simulates {})",
        pruned.simulated,
        pruned.injected(),
        unpruned.simulated,
    );
    group.bench_function("sequential_mbu_2x2", |b| {
        b.iter(|| mbu.run(&device, &routed).expect("campaign"))
    });
    group.bench_function("pruned_sequential_mbu_2x2", |b| {
        b.iter(|| pruned_campaign.run(&device, &routed).expect("campaign"))
    });
    group.finish();
}

/// Sweep throughput: the staged pipeline over two variants of the reduced
/// FIR, cold (fresh artifact cache every iteration) against warm (shared
/// cache primed once) — the warm row documents what the cache saves on
/// repeated sweeps, and the eprintln records the hit counters for the CI
/// bench log.
fn bench_sweep_throughput(c: &mut Criterion) {
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(20, 20); // 800 LUT sites; small TMR_p2 needs 777
    let campaign = CampaignBuilder::new().faults(150).cycles(8);
    let sweep = Sweep::new(&base)
        .variant("standard", None)
        .variant("tmr_p2", Some(TmrConfig::paper_p2()))
        .on_device(&device)
        .campaign(campaign);

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            sweep
                .clone()
                .cache(ArtifactCache::shared())
                .run()
                .expect("sweep")
        })
    });

    let warm_cache = ArtifactCache::shared();
    let warm_sweep = sweep.cache(warm_cache.clone());
    let primed = warm_sweep.run().expect("sweep");
    assert!(
        primed.cache.misses > 0,
        "the priming run must compute artifacts"
    );
    group.bench_function("warm", |b| b.iter(|| warm_sweep.run().expect("sweep")));
    let stats = warm_cache.stats();
    assert!(
        stats.hits > stats.misses,
        "repeated sweeps must be served from the cache ({stats})"
    );
    eprintln!("sweep_throughput/warm artifact cache: {stats}");
    group.finish();
}

/// Static-analysis throughput (configuration bits/second): the whole-
/// bitstream criticality classification of `tmr-analyze` on the FIR `TMR_p2`
/// design.
fn bench_analyze_throughput(c: &mut Criterion) {
    let netlist = small_tmr_netlist(&TmrConfig::paper_p2());
    let device = Device::small(20, 20);
    let routed = place_and_route(&device, &netlist, 1).expect("place and route");
    let bits = device.config_layout().bit_count();

    let mut group = c.benchmark_group("analyze_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bits as u64));
    group.bench_function("static_analysis_full_bitstream", |b| {
        b.iter(|| StaticAnalysis::run(&device, &routed))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_implementation,
    bench_pnr_throughput,
    bench_fault_injection,
    bench_campaign_throughput,
    bench_sim_throughput,
    bench_mbu_throughput,
    bench_sweep_throughput,
    bench_analyze_throughput
);
criterion_main!(benches);
