//! Campaign service integration: jobs run to completion and match the
//! library flow, interrupted jobs resume **byte-identically** under every
//! fault model, identical re-submissions are served from the store with
//! zero simulations, and two jobs interleave over the worker pool.

use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tmr_fpga::faultsim::CampaignResult;
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::store::Persist;
use tmr_fpga::tmr::pipeline::CacheKey;
use tmr_fpga::Store;
use tmr_serve::{CampaignService, Event, JobSpec, ResultSource, ServiceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmr-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small five-batch job: counter(4) with TMR partition P2 on an 8x8
/// device, under the given fault model.
fn spec(model: &str) -> JobSpec {
    let mut spec = JobSpec::new("counter:4");
    spec.variant = "p2".to_string();
    spec.model = model.to_string();
    spec.faults = 160;
    spec.cycles = 8;
    spec.batch = 32;
    spec.device = Some((8, 8));
    spec
}

/// The reference result: the same campaign through the library flow, with
/// the requested shard count (outcomes are shard-count independent).
fn reference(spec: &JobSpec, shards: usize) -> CampaignResult {
    let design = spec.design_instance().unwrap();
    let device = spec.device_instance().unwrap();
    let mut builder = FlowBuilder::new(&device, &design)
        .seed(spec.seed)
        .shards(shards);
    if let Some(tmr) = spec.tmr_config().unwrap() {
        builder = builder.tmr(tmr);
    }
    let flow = builder.build();
    (*flow.campaign(&spec.campaign().unwrap()).unwrap()).clone()
}

fn recv(events: &Receiver<Event>) -> Event {
    events
        .recv_timeout(Duration::from_secs(120))
        .expect("the service emits the next event")
}

/// Drains events until the given job's terminal one, returning its
/// fingerprint (from `started`), progress count and the result event.
fn drain_job(events: &Receiver<Event>, id: &str) -> (u64, usize, Event) {
    let mut fingerprint = 0;
    let mut progress = 0;
    loop {
        match recv(events) {
            Event::Started {
                id: event_id,
                fingerprint: fp,
                ..
            } if event_id == id => fingerprint = fp,
            Event::Progress { id: event_id, .. } if event_id == id => progress += 1,
            event @ Event::Result { .. } if event.job_id() == Some(id) => {
                return (fingerprint, progress, event)
            }
            Event::Error {
                id: event_id,
                message,
            } if event_id.as_deref() == Some(id) => {
                panic!("job {id} failed: {message}")
            }
            _ => {}
        }
    }
}

#[test]
fn service_campaign_matches_the_library_flow() {
    let spec = spec("single");
    let (service, events) = CampaignService::new(ServiceConfig::default());
    let id = service
        .submit(Some("direct".to_string()), spec.clone())
        .unwrap();
    let (_, progress, result) = drain_job(&events, &id.0);
    assert!(progress >= 4, "160 faults in batches of 32 report progress");
    let expected = reference(&spec, 1);
    match result {
        Event::Result {
            injected,
            wrong_answers,
            served_from,
            ..
        } => {
            assert_eq!(injected, expected.injected());
            assert_eq!(wrong_answers, expected.wrong_answers());
            assert_eq!(served_from, ResultSource::Run);
        }
        other => panic!("expected a result event, got {other:?}"),
    }
    service.shutdown();
}

/// Interrupt a job mid-campaign (pause, drop the service), then finish it
/// in a **new** service over the same store: the stored result must be
/// byte-identical to an uninterrupted run — for every fault model, and
/// equal to a multi-shard flow run as well.
#[test]
fn interrupted_jobs_resume_byte_identically_for_every_fault_model() {
    for model in ["single", "mbu:2-in-frame", "accumulate:3"] {
        let dir = temp_dir(&format!("resume-{}", model.replace(':', "-")));
        let spec = spec(model);

        let store = Arc::new(Store::open(&dir).unwrap());
        let (service, events) = CampaignService::new(ServiceConfig {
            workers: 1,
            store: Some(store),
        });
        let id = service
            .submit(Some("victim".to_string()), spec.clone())
            .unwrap();
        // Interrupt after the first batch boundary.
        loop {
            match recv(&events) {
                Event::Progress { .. } => break,
                Event::Result { .. } => panic!("job finished before it could be interrupted"),
                _ => {}
            }
        }
        service.pause(&id.0).unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        while service.status()[0].state == "running" {
            assert!(Instant::now() < deadline, "pause parks the job");
            std::thread::sleep(Duration::from_millis(10));
        }
        let interrupted_at = service.status()[0].injected;
        assert!(interrupted_at > 0 && interrupted_at < spec.faults);
        drop(service); // crash: workers stop, only the store survives

        // A fresh process: new service, new memory cache, same store.
        let store = Arc::new(Store::open(&dir).unwrap());
        let (service, events) = CampaignService::new(ServiceConfig {
            workers: 1,
            store: Some(store.clone()),
        });
        service
            .submit(Some("victim".to_string()), spec.clone())
            .unwrap();
        let (fingerprint, _, _) = drain_job(&events, "victim");
        let resumed: CampaignResult = store
            .load_as(CacheKey::new("campaign", fingerprint))
            .expect("the finished campaign is stored");
        assert!(
            store
                .load_as::<tmr_fpga::store::CampaignPrefix>(CacheKey::new(
                    "campaign.partial",
                    fingerprint
                ))
                .is_none(),
            "the partial prefix is removed once the job completes"
        );

        let uninterrupted = reference(&spec, 1);
        assert_eq!(resumed, uninterrupted, "model {model}");
        assert_eq!(
            resumed.to_bytes(),
            uninterrupted.to_bytes(),
            "model {model}: byte-identical after resumption"
        );
        assert_eq!(resumed, reference(&spec, 3), "model {model}: shard count");
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Re-submitting an identical job performs zero simulations: in-process it
/// is served from memory, across services from the store — with no
/// progress events and `batches: 0`.
#[test]
fn identical_resubmission_is_served_without_simulation() {
    let dir = temp_dir("dedup");
    let spec = spec("single");
    let store = Arc::new(Store::open(&dir).unwrap());
    let (service, events) = CampaignService::new(ServiceConfig {
        workers: 1,
        store: Some(store),
    });
    service
        .submit(Some("first".to_string()), spec.clone())
        .unwrap();
    let (_, _, first) = drain_job(&events, "first");
    service
        .submit(Some("again".to_string()), spec.clone())
        .unwrap();
    let (_, progress, again) = drain_job(&events, "again");
    assert_eq!(progress, 0, "a deduplicated job never reports progress");
    match (&first, &again) {
        (
            Event::Result {
                injected: a,
                wrong_answers: b,
                ..
            },
            Event::Result {
                injected: x,
                wrong_answers: y,
                served_from,
                batches,
                ..
            },
        ) => {
            assert_eq!((a, b), (x, y));
            assert_eq!(*served_from, ResultSource::Memory);
            assert_eq!(*batches, 0);
        }
        other => panic!("expected two result events, got {other:?}"),
    }
    service.shutdown();

    // A new service over the same store: served from disk, still no work.
    let store = Arc::new(Store::open(&dir).unwrap());
    let (service, events) = CampaignService::new(ServiceConfig {
        workers: 1,
        store: Some(store.clone()),
    });
    service.submit(Some("cross".to_string()), spec).unwrap();
    let (_, progress, cross) = drain_job(&events, "cross");
    assert_eq!(progress, 0);
    match cross {
        Event::Result {
            served_from,
            batches,
            ..
        } => {
            assert_eq!(served_from, ResultSource::Store);
            assert_eq!(batches, 0);
        }
        other => panic!("expected a result event, got {other:?}"),
    }
    assert!(store.stats().hits > 0, "the dedup probe hit the store");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two concurrent jobs over two workers make interleaved progress: each
/// reports at least one batch before the other finishes.
#[test]
fn concurrent_jobs_interleave_their_progress() {
    let mut left = spec("single");
    left.variant = "p2".to_string();
    let mut right = spec("single");
    right.variant = "p3".to_string();

    let (service, events) = CampaignService::new(ServiceConfig {
        workers: 2,
        store: None,
    });
    service.submit(Some("left".to_string()), left).unwrap();
    service.submit(Some("right".to_string()), right).unwrap();

    let mut order = Vec::new();
    let mut results = 0;
    while results < 2 {
        match recv(&events) {
            Event::Progress { id, .. } => order.push(id),
            Event::Result { .. } => results += 1,
            Event::Error { message, .. } => panic!("job failed: {message}"),
            _ => {}
        }
    }
    let first_left = order.iter().position(|id| id == "left");
    let first_right = order.iter().position(|id| id == "right");
    let last_left = order.iter().rposition(|id| id == "left");
    let last_right = order.iter().rposition(|id| id == "right");
    let (first_left, first_right, last_left, last_right) = (
        first_left.expect("left reports progress"),
        first_right.expect("right reports progress"),
        last_left.unwrap(),
        last_right.unwrap(),
    );
    assert!(
        first_left < last_right && first_right < last_left,
        "progress interleaves: {order:?}"
    );
    service.shutdown();
}

mod interruption_points {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Resuming is byte-identical no matter *which* batch boundary the
        /// interruption hits.
        #[test]
        fn any_interruption_point_resumes_byte_identically(batches_before_pause in 0usize..4) {
            let dir = temp_dir(&format!("point-{batches_before_pause}"));
            let spec = spec("single");

            let store = Arc::new(Store::open(&dir).unwrap());
            let (service, events) = CampaignService::new(ServiceConfig {
                workers: 1,
                store: Some(store),
            });
            service.submit(Some("victim".to_string()), spec.clone()).unwrap();
            let mut seen = 0;
            let finished = loop {
                match recv(&events) {
                    Event::Progress { .. } => {
                        seen += 1;
                        if seen > batches_before_pause {
                            break false;
                        }
                    }
                    Event::Result { .. } => break true,
                    _ => {}
                }
            };
            if !finished {
                service.pause("victim").unwrap();
                let deadline = Instant::now() + Duration::from_secs(120);
                while service.status()[0].state == "running" {
                    prop_assert!(Instant::now() < deadline, "pause parks the job");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            drop(service);

            let store = Arc::new(Store::open(&dir).unwrap());
            let (service, events) = CampaignService::new(ServiceConfig {
                workers: 1,
                store: Some(store.clone()),
            });
            service.submit(Some("victim".to_string()), spec.clone()).unwrap();
            let (fingerprint, _, _) = drain_job(&events, "victim");
            let resumed: CampaignResult = store
                .load_as(CacheKey::new("campaign", fingerprint))
                .expect("the finished campaign is stored");
            let uninterrupted = reference(&spec, 1);
            prop_assert_eq!(&resumed, &uninterrupted);
            prop_assert_eq!(resumed.to_bytes(), uninterrupted.to_bytes());
            service.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
