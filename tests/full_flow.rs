//! Cross-crate integration tests: word-level design → TMR → synthesis →
//! place-and-route → simulation → fault injection, driven through the staged
//! pipeline API.

use std::collections::HashMap;
use tmr_fpga::arch::Device;
use tmr_fpga::designs::{accumulator, moving_sum, FirFilter};
use tmr_fpga::faultsim::{CampaignBuilder, FaultClass};
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::pnr::RoutedDesign;
use tmr_fpga::sim::{word_vectors, FaultOverlay, OutputGroups, Simulator, Trit};
use tmr_fpga::synth::Design;
use tmr_fpga::tmr::TmrConfig;

/// Implements a design through the staged pipeline (the test-local successor
/// of the removed pre-0.2 `flow::implement` helper).
fn implement(device: &Device, design: &Design, seed: u64) -> RoutedDesign {
    FlowBuilder::new(device, design)
        .seed(seed)
        .build()
        .routed()
        .expect("implementation")
        .design()
        .clone()
}

/// Builds per-cycle word-level stimuli for one input named `x`.
fn x_samples(values: &[i64]) -> Vec<HashMap<String, i64>> {
    values
        .iter()
        .map(|&v| {
            let mut m = HashMap::new();
            m.insert("x".to_string(), v);
            m
        })
        .collect()
}

/// Reads back the voted word-level output `y` of a trace, given the grouping.
fn decode_y(
    netlist: &tmr_fpga::netlist::Netlist,
    groups: &OutputGroups,
    trace: &tmr_fpga::sim::SimTrace,
) -> Vec<i64> {
    let voted = groups.vote(trace);
    let descriptors: Vec<(String, u32)> = groups
        .descriptors()
        .map(|(base, bit, _)| (base.to_string(), bit))
        .collect();
    let width = descriptors
        .iter()
        .map(|&(_, bit)| bit + 1)
        .max()
        .unwrap_or(0);
    let _ = netlist;
    voted
        .iter()
        .map(|cycle| {
            let mut raw: i64 = 0;
            for (value, (_, bit)) in cycle.iter().zip(descriptors.iter()) {
                if *value == Trit::One {
                    raw |= 1 << bit;
                }
            }
            // Sign-extend.
            let shift = 64 - width;
            (raw << shift) >> shift
        })
        .collect()
}

#[test]
fn routed_fir_matches_the_reference_response() {
    // Full flow on the reduced 5-tap filter: the routed, configured design
    // must be bit-true against the arithmetic reference model.
    let fir = FirFilter::small_filter();
    let design = fir.to_design();
    let device = Device::small(14, 14);
    let routed = implement(&device, &design, 3);

    let samples = vec![0, 5, -9, 31, -32, 17, 0, 0, -1, 2, 8, -20, 0, 0, 0, 0];
    let vectors = word_vectors(routed.netlist(), &x_samples(&samples));
    let simulator = Simulator::new(routed.netlist()).expect("acyclic");
    let trace = simulator.run(&vectors, &FaultOverlay::none());
    let groups = OutputGroups::new(routed.netlist());
    let actual = decode_y(routed.netlist(), &groups, &trace);
    let expected = fir.reference_response(&samples);
    assert_eq!(actual, expected);
}

#[test]
fn routed_tmr_fir_matches_the_reference_response() {
    let fir = FirFilter::small_filter();
    let device = Device::small(20, 20);
    let flow = FlowBuilder::new(&device, &fir.to_design())
        .tmr(TmrConfig::paper_p2())
        .seed(3)
        .build();
    let routed = flow.routed().expect("implementation");

    let samples = vec![1, -2, 3, 15, -16, 0, 7, 0, 0, 0];
    let vectors = word_vectors(routed.netlist(), &x_samples(&samples));
    let simulator = Simulator::new(routed.netlist()).expect("acyclic");
    let trace = simulator.run(&vectors, &FaultOverlay::none());
    let groups = OutputGroups::new(routed.netlist());
    let actual = decode_y(routed.netlist(), &groups, &trace);
    assert_eq!(actual, fir.reference_response(&samples));
}

#[test]
fn sweep_implements_all_five_variants_and_tmr_beats_unprotected() {
    use tmr_fpga::flow::Sweep;

    let base = FirFilter::small_filter().to_design();
    // 24x24 = 1152 LUT sites: large enough for tmr_p1, the largest variant
    // (957 LUTs — a 20x20 grid holds only 800).
    let device = Device::small(24, 24);
    let report = Sweep::paper(&base)
        .on_device(&device)
        .campaign(CampaignBuilder::new().faults(700).cycles(12).sequential())
        .run()
        .expect("sweep");

    assert_eq!(report.variants.len(), 5);
    // The sweep's synthesis pre-pass (device sizing) and the per-variant
    // flows share the cache, so reuse must be visible.
    assert!(
        report.cache.hits > 0,
        "the sweep must reuse cached artifacts, got {}",
        report.cache
    );

    let percent = |name: &str| {
        report
            .variant(name)
            .and_then(|v| v.campaign.as_ref())
            .map(|r| r.wrong_answer_percent())
            .expect("variant present with campaign")
    };
    let standard = percent("standard");
    for tmr in ["tmr_p1", "tmr_p2", "tmr_p3", "tmr_p3_nv"] {
        assert!(
            percent(tmr) < standard / 2.0,
            "{tmr} ({:.2}%) must be far more robust than standard ({standard:.2}%)",
            percent(tmr)
        );
    }
    // LUT upsets never defeat any TMR variant (Table 4, LUT row = 0).
    for (name, result) in report.campaigns() {
        if name != "standard" {
            assert_eq!(
                result
                    .error_classification()
                    .get(&FaultClass::Lut)
                    .copied()
                    .unwrap_or(0),
                0,
                "{name}: a LUT upset in one domain must be voted out"
            );
        }
    }
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    // The sharded engine must produce the exact same CampaignResult as the
    // sequential path for any shard count — Table 3/4 reproductions may
    // never depend on the thread schedule.
    let device = Device::small(20, 20);
    let flow = FlowBuilder::new(&device, &FirFilter::small_filter().to_design())
        .tmr(TmrConfig::paper_p2())
        .build();
    let routed = flow.routed().expect("implementation");
    let campaign = CampaignBuilder::new().faults(300).cycles(10);
    let sequential = campaign
        .clone()
        .sequential()
        .run(&device, routed.design())
        .expect("campaign");
    for shards in [1usize, 2, 8] {
        let parallel = campaign
            .clone()
            .shards(shards)
            .run(&device, routed.design())
            .expect("campaign");
        assert_eq!(sequential, parallel, "shard count {shards}");
    }
    // The default (per-core) sharding is covered too.
    let auto = campaign.run(&device, routed.design()).expect("campaign");
    assert_eq!(sequential, auto);
}

#[test]
fn feedback_designs_survive_the_full_flow() {
    // Accumulators exercise the registered-feedback path (state-machine logic
    // in the paper's taxonomy).
    let device = Device::small(12, 12);
    let flow = FlowBuilder::new(&device, &accumulator(6))
        .tmr(TmrConfig::paper_p2())
        .seed(2)
        .build();
    let routed = flow.routed().expect("implementation");
    routed.netlist().validate().expect("valid netlist");
    assert!(routed.bitstream().count_ones() > 0);
}

#[test]
fn moving_sum_campaign_orders_partitions_sensibly() {
    // Ablation on a mid-size adder chain: every TMR variant must stay well
    // below the unprotected design's error rate.
    let base = moving_sum(4, 5, 8);
    let device = Device::small(18, 18);
    let campaign = CampaignBuilder::new().faults(500).cycles(12).sequential();
    let standard = campaign
        .clone()
        .run(&device, &implement(&device, &base, 1))
        .expect("campaign");
    let p2_flow = FlowBuilder::new(&device, &base)
        .tmr(TmrConfig::paper_p2())
        .build();
    let p2 = campaign
        .run(&device, p2_flow.routed().expect("implementation").design())
        .expect("campaign");
    assert!(p2.wrong_answer_percent() < standard.wrong_answer_percent() / 2.0);
}
