//! Property-based tests of the core invariants:
//!
//! * lowering is bit-true against the word-level reference model,
//! * the TMR transformation preserves functionality for arbitrary filters and
//!   stimuli, and masks any single corrupted domain,
//! * CSD constant multipliers are exact for arbitrary coefficients,
//! * the bitstream and netlist containers behave like their specifications.

use proptest::prelude::*;
use std::collections::HashMap;
use tmr_fpga::arch::Bitstream;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::synth::{lower, optimize, techmap, Design};
use tmr_fpga::tmr::{apply_tmr, TmrConfig};

fn stim(names: &[&str], cycles: &[Vec<i64>]) -> Vec<HashMap<String, i64>> {
    cycles
        .iter()
        .map(|values| {
            names
                .iter()
                .zip(values.iter())
                .map(|(n, v)| (n.to_string(), *v))
                .collect()
        })
        .collect()
}

fn tmr_stim(names: &[&str], cycles: &[Vec<i64>]) -> Vec<HashMap<String, i64>> {
    cycles
        .iter()
        .map(|values| {
            let mut m = HashMap::new();
            for (n, v) in names.iter().zip(values.iter()) {
                for d in 0..3 {
                    m.insert(format!("{n}_tr{d}"), *v);
                }
            }
            m
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `a * coefficient` through CSD lowering equals the arithmetic product for
    /// arbitrary 9-bit inputs and coefficients up to ±512.
    #[test]
    fn constant_multiplier_is_exact(coefficient in -512i64..=512, samples in prop::collection::vec(-256i64..=255, 1..6)) {
        let mut design = Design::new("pmul");
        let a = design.add_input("a", 9);
        let product = design.add_mul_const("p", a, coefficient, 20);
        design.add_output("y", product);
        let cycles: Vec<Vec<i64>> = samples.iter().map(|&s| vec![s]).collect();
        let outputs = design.evaluate(&stim(&["a"], &cycles));
        for (cycle, &sample) in samples.iter().enumerate() {
            prop_assert_eq!(outputs[cycle]["y"], sample * coefficient);
        }
        // And the gate-level netlist is structurally valid after optimisation.
        let mapped = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        prop_assert!(mapped.validate().is_ok());
    }

    /// Arbitrary small FIR filters: the word-level design matches the
    /// reference convolution for random coefficient sets and inputs.
    #[test]
    fn fir_design_matches_reference(
        taps in prop::collection::vec(-64i64..=64, 2..6),
        samples in prop::collection::vec(-128i64..=127, 4..12)
    ) {
        let fir = FirFilter::new("pfir", taps, 8, 20);
        let design = fir.to_design();
        let cycles: Vec<Vec<i64>> = samples.iter().map(|&s| vec![s]).collect();
        let outputs = design.evaluate(&stim(&["x"], &cycles));
        let expected = fir.reference_response(&samples);
        for (cycle, value) in expected.iter().enumerate() {
            prop_assert_eq!(outputs[cycle]["y"], *value);
        }
    }

    /// The TMR transformation preserves functionality (all domains fed the
    /// same inputs) and masks a corrupted copy in any single domain, for every
    /// paper preset and arbitrary small filters.
    #[test]
    fn tmr_preserves_function_and_masks_single_domain(
        taps in prop::collection::vec(-32i64..=32, 2..5),
        samples in prop::collection::vec(-64i64..=63, 3..8),
        corrupt_domain in 0usize..3,
        corruption in 1i64..=255
    ) {
        let fir = FirFilter::new("pfir", taps, 8, 18);
        let base = fir.to_design();
        let cycles: Vec<Vec<i64>> = samples.iter().map(|&s| vec![s]).collect();
        let expected = base.evaluate(&stim(&["x"], &cycles));

        for config in [TmrConfig::paper_p1(), TmrConfig::paper_p2(), TmrConfig::paper_p3(), TmrConfig::paper_p3_nv()] {
            let tmr = apply_tmr(&base, &config).unwrap();
            // Clean triplicated stimuli.
            let clean = tmr.evaluate(&tmr_stim(&["x"], &cycles));
            for (cycle, reference) in expected.iter().enumerate() {
                for d in 0..3 {
                    prop_assert_eq!(
                        clean[cycle][&format!("y_tr{d}")],
                        reference["y"],
                        "clean run, {} cycle {} domain {}",
                        config.label,
                        cycle,
                        d
                    );
                }
            }
            // Corrupt one domain's input stream: the majority of the three
            // output copies must still match the reference (pad-level vote).
            let corrupted: Vec<HashMap<String, i64>> = cycles
                .iter()
                .map(|values| {
                    let mut m = HashMap::new();
                    for d in 0..3 {
                        let v = if d == corrupt_domain { values[0] ^ corruption } else { values[0] };
                        m.insert(format!("x_tr{d}"), v);
                    }
                    m
                })
                .collect();
            let faulty = tmr.evaluate(&corrupted);
            for (cycle, reference) in expected.iter().enumerate() {
                let votes = (0..3)
                    .filter(|d| faulty[cycle][&format!("y_tr{d}")] == reference["y"])
                    .count();
                prop_assert!(
                    votes >= 2,
                    "{}: cycle {}: fewer than two output copies agree with the reference",
                    config.label,
                    cycle
                );
            }
        }
    }

    /// `flip` is an involution: flipping any bit twice restores the exact
    /// bitstream (words and population count included), and the first flip's
    /// return value is the inverse of the bit's prior value.
    #[test]
    fn bitstream_flip_is_an_involution(len in 1usize..2048, bits in prop::collection::vec(0usize..2048, 1..48)) {
        let mut bitstream = Bitstream::zeros(len);
        // Scatter a random prefix of the bit positions to start from an
        // arbitrary configuration.
        for &bit in bits.iter().take(bits.len() / 2).filter(|&&b| b < len) {
            bitstream.set(bit, true);
        }
        let pristine = bitstream.clone();
        for &bit in bits.iter().filter(|&&b| b < len) {
            let before = bitstream.get(bit);
            prop_assert_eq!(bitstream.flip(bit), !before);
            prop_assert_eq!(bitstream.flip(bit), before);
            prop_assert_eq!(&bitstream, &pristine, "double flip of {} must restore", bit);
        }
    }

    /// `set`/`get` round-trip: the last write wins, other bits are untouched.
    #[test]
    fn bitstream_set_get_roundtrip(
        len in 1usize..2048,
        writes in prop::collection::vec((0usize..2048, prop::bool::ANY), 0..48)
    ) {
        let mut bitstream = Bitstream::zeros(len);
        let mut reference = vec![false; len];
        for &(bit, value) in writes.iter().filter(|&&(b, _)| b < len) {
            bitstream.set(bit, value);
            reference[bit] = value;
            prop_assert_eq!(bitstream.get(bit), value);
        }
        for (bit, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(bitstream.get(bit), expected);
        }
        prop_assert_eq!(bitstream.len(), len);
    }

    /// `count_ones` stays consistent with `get`, `iter_ones` and `diff`
    /// under arbitrary flip sequences.
    #[test]
    fn bitstream_count_ones_is_consistent_under_flips(len in 1usize..2048, bits in prop::collection::vec(0usize..2048, 0..48)) {
        let mut bitstream = Bitstream::zeros(len);
        let mut expected = 0usize;
        for &bit in bits.iter().filter(|&&b| b < len) {
            expected = if bitstream.flip(bit) { expected + 1 } else { expected - 1 };
            prop_assert_eq!(bitstream.count_ones(), expected);
        }
        prop_assert_eq!(bitstream.iter_ones().count(), expected);
        prop_assert!(bitstream.iter_ones().all(|bit| bitstream.get(bit)));
        prop_assert_eq!(Bitstream::zeros(len).diff(&bitstream).len(), expected);
    }

    /// Bitstream set/flip/diff behave like a bit vector.
    #[test]
    fn bitstream_flip_roundtrip(len in 1usize..2048, bits in prop::collection::vec(0usize..2048, 0..32)) {
        let mut bitstream = Bitstream::zeros(len);
        let mut reference = vec![false; len];
        for &bit in bits.iter().filter(|&&b| b < len) {
            bitstream.flip(bit);
            reference[bit] = !reference[bit];
        }
        prop_assert_eq!(bitstream.count_ones(), reference.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = bitstream.iter_ones().collect();
        let expected: Vec<usize> = reference.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        prop_assert_eq!(ones, expected);
        let pristine = Bitstream::zeros(len);
        prop_assert_eq!(pristine.diff(&bitstream).len(), bitstream.count_ones());
    }
}
