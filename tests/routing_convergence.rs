//! PathFinder convergence regression (per-iteration router telemetry).
//!
//! The five small-FIR paper variants must route on the reference 24x24
//! device within a pinned negotiation-iteration budget. A router or
//! cost-schedule change that degrades convergence shows up here as an
//! iteration-count regression long before it becomes a routing failure.

use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::flow::Sweep;
use tmr_fpga::pnr::{route_with_telemetry, RouterOptions};

/// Measured convergence today (A* lookahead router with the
/// contention-adaptive heuristic weight): standard 9, tmr_p3_nv 12,
/// tmr_p2 22, tmr_p3 28 and tmr_p1 (the most congested variant on the
/// deliberately tight 24x24 device) 114 iterations. The budget leaves
/// headroom for cost-schedule tweaks without letting convergence quietly
/// decay toward the router's hard limit of 250, where `tmr_p1` would start
/// failing.
const ITERATION_BUDGET: usize = 150;

#[test]
fn paper_variants_route_within_the_iteration_budget() {
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(24, 24);
    let (device, flows) = Sweep::paper(&base)
        .on_device(&device)
        .flows()
        .expect("the paper variants implement on the 24x24 device");

    for (name, flow) in flows {
        let synthesized = flow.synthesized().expect("synthesis succeeds");
        let placed = flow.placed().expect("placement succeeds");
        let (routes, telemetry) = route_with_telemetry(
            &device,
            synthesized.netlist(),
            placed.placement(),
            &RouterOptions::default(),
        );
        routes.unwrap_or_else(|error| panic!("variant {name} failed to route: {error}"));

        assert!(
            telemetry.converged(),
            "variant {name}: successful route must end with zero overused nodes"
        );
        assert!(
            telemetry.iteration_count() >= 1,
            "variant {name}: telemetry must record every iteration"
        );
        assert!(
            telemetry.iteration_count() <= ITERATION_BUDGET,
            "variant {name}: router took {} negotiation iterations (budget {ITERATION_BUDGET}) \
             — convergence regressed",
            telemetry.iteration_count()
        );

        // The telemetry is self-consistent: iterations are numbered from 1,
        // the present-congestion factor never decreases, and only the first
        // iteration may route without any rip-ups.
        for (index, iteration) in telemetry.iterations.iter().enumerate() {
            assert_eq!(iteration.iteration, index + 1, "variant {name}");
            if index > 0 {
                assert!(
                    iteration.present_factor >= telemetry.iterations[index - 1].present_factor,
                    "variant {name}: present factor must be non-decreasing"
                );
                assert!(
                    iteration.ripped_up > 0,
                    "variant {name}: a non-first iteration only runs to resolve overuse"
                );
            }
        }
        assert_eq!(
            telemetry.iterations.last().map(|last| last.overused_nodes),
            Some(0),
            "variant {name}"
        );
    }
}
