//! Cross-validation of the static criticality analyzer against the dynamic
//! fault-injection campaign on the paper TMR configurations.
//!
//! Two properties are asserted per design:
//!
//! 1. **Static soundness** — every fault the dynamic campaign reports with
//!    `crosses_domains == true` has its bit flagged
//!    [`Verdict::DomainCrossing`] by the static analysis (the analyzer never
//!    misses a voter-defeating candidate), and more broadly every
//!    dynamically observed wrong answer comes from a bit the analysis keeps
//!    in its observable set.
//! 2. **Pruning transparency** — the pruned campaign samples the same bits
//!    and produces *identical* outcomes while simulating strictly fewer
//!    faults.

use tmr_fpga::analyze::{PruneWith, StaticAnalysis, Verdict};
use tmr_fpga::arch::{Device, MbuPattern};
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::{CampaignBuilder, FaultModel};
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::tmr::TmrConfig;

/// The multi-bit fault models cross-validated against the analyzer.
fn multi_bit_models() -> [FaultModel; 3] {
    [
        FaultModel::Mbu {
            pattern: MbuPattern::PairInFrame,
        },
        FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2,
        },
        FaultModel::Accumulate {
            upsets_per_scrub: 2,
        },
    ]
}

fn assert_static_soundness(config: TmrConfig, grid: u16, seed: u64) {
    let label = config.label.clone();
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(grid, grid);
    let flow = FlowBuilder::new(&device, &base)
        .tmr(config)
        .seed(seed)
        .build();
    let routed = flow.routed().expect("implementation");

    let analyzed = flow.analyzed().expect("analysis");
    let analysis = analyzed.analysis();
    assert!(
        analysis.voted_tmr(),
        "{label}: the paper TMR configs are pad-voted designs"
    );
    assert_eq!(analysis.bit_count(), device.config_layout().bit_count());

    let campaign = CampaignBuilder::new().faults(700).cycles(12).sequential();
    let unpruned = campaign
        .clone()
        .run(&device, routed.design())
        .expect("campaign");

    // 1a. Dynamic domain crossings are contained in the static critical set.
    let mut dynamic_crossings = 0;
    for outcome in &unpruned.outcomes {
        if outcome.crosses_domains {
            dynamic_crossings += 1;
            assert!(
                matches!(
                    analysis.verdict(outcome.bit),
                    Verdict::DomainCrossing { .. }
                ),
                "{label}: bit {} crosses domains dynamically but is {} statically",
                outcome.bit,
                analysis.verdict(outcome.bit)
            );
        }
    }
    assert!(
        dynamic_crossings > 0,
        "{label}: the sample must contain domain-crossing candidates"
    );

    // 1b. Every observed failure comes from a statically observable bit.
    for outcome in unpruned.outcomes.iter().filter(|o| o.wrong_answer) {
        assert!(
            analysis
                .observable_bits()
                .binary_search(&outcome.bit)
                .is_ok(),
            "{label}: bit {} caused a wrong answer but was statically pruned ({})",
            outcome.bit,
            analysis.verdict(outcome.bit)
        );
    }

    // 2. The pruned campaign is bit-identical over the same sampled bits and
    //    simulates strictly fewer faults.
    let pruned = campaign
        .prune_with(analysis)
        .run(&device, routed.design())
        .expect("campaign");
    assert_eq!(
        pruned.outcomes, unpruned.outcomes,
        "{label}: pruning must not change any outcome"
    );
    assert_eq!(pruned.fault_list_size, unpruned.fault_list_size);
    assert!(
        pruned.simulated < unpruned.simulated,
        "{label}: pruning must reduce simulated faults ({} vs {})",
        pruned.simulated,
        unpruned.simulated
    );
}

#[test]
fn static_analysis_is_sound_for_paper_p1() {
    // 24x24 = 1152 LUT sites: tmr_p1, the largest variant, needs 957.
    assert_static_soundness(TmrConfig::paper_p1(), 24, 1);
}

#[test]
fn static_analysis_is_sound_for_paper_p2() {
    assert_static_soundness(TmrConfig::paper_p2(), 20, 1);
}

/// Pruned *multi-bit* campaigns are transparent too: a cluster or scrub
/// interval is only skipped when every behaviour-changing bit is statically
/// confined to one common redundant domain, so outcomes are identical while
/// strictly fewer faults are simulated.
#[test]
fn mbu_pruning_is_transparent_and_strictly_cheaper() {
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(20, 20);
    let flow = FlowBuilder::new(&device, &base)
        .tmr(TmrConfig::paper_p2())
        .seed(1)
        .build();
    let routed = flow.routed().expect("implementation");
    let analysis = flow.analyzed().expect("analysis");
    assert!(analysis.analysis().voted_tmr());

    for model in multi_bit_models() {
        let campaign = CampaignBuilder::new()
            .faults(500)
            .cycles(10)
            .fault_model(model)
            .sequential();
        let unpruned = campaign
            .clone()
            .run(&device, routed.design())
            .expect("campaign");
        let pruned = campaign
            .prune_with(analysis.analysis())
            .run(&device, routed.design())
            .expect("campaign");
        assert_eq!(
            pruned.outcomes, unpruned.outcomes,
            "{model}: pruning must not change any outcome"
        );
        assert!(
            pruned.simulated < unpruned.simulated,
            "{model}: pruning must reduce simulated faults ({} vs {})",
            pruned.simulated,
            unpruned.simulated
        );
        // Every pruned-away fault is one the analyzer's merged verdict rules
        // out; every wrong answer stays statically observable.
        for outcome in unpruned.outcomes.iter().filter(|o| o.wrong_answer) {
            assert!(
                analysis.analysis().fault_possibly_observable(&outcome.bits),
                "{model}: fault {:?} caused a wrong answer but was statically maskable",
                outcome.bits
            );
        }
    }
}

#[test]
fn unprotected_designs_are_never_pruned() {
    // Without voters nothing is maskable: the observable set must keep every
    // bit whose overlay is non-empty, so pruning only skips what the engine
    // skips anyway and campaign results are unchanged — under every fault
    // model.
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(14, 14);
    let flow = FlowBuilder::new(&device, &base).seed(3).build();
    let routed = flow.routed().expect("implementation");
    let analysis = StaticAnalysis::run(&device, routed.design());
    assert!(!analysis.voted_tmr());
    assert_eq!(analysis.maskable_domains().count(), 0);

    let mut models = vec![FaultModel::SingleBit];
    models.extend(multi_bit_models());
    for model in models {
        let campaign = CampaignBuilder::new()
            .faults(300)
            .cycles(8)
            .fault_model(model)
            .sequential();
        let unpruned = campaign
            .clone()
            .run(&device, routed.design())
            .expect("campaign");
        let pruned = campaign
            .prune_with(&analysis)
            .run(&device, routed.design())
            .expect("campaign");
        assert_eq!(pruned.outcomes, unpruned.outcomes, "{model}");
        assert_eq!(
            pruned.simulated, unpruned.simulated,
            "{model}: an unprotected design offers nothing to prune"
        );
    }
}
