//! Disk-backed cache integration: flows and sweeps warm-start from a
//! `Store`, skipping synthesis, placement, routing and simulation entirely
//! on the second run — with byte-identical artifacts.

use std::path::PathBuf;
use std::sync::Arc;
use tmr_fpga::arch::Device;
use tmr_fpga::faultsim::CampaignBuilder;
use tmr_fpga::flow::{FlowBuilder, Sweep};
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::Store;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmr-persistence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_flow_skips_every_stage_and_matches() {
    let dir = temp_dir("flow");
    let device = Device::small(8, 8);
    let design = tmr_fpga::designs::counter(4);
    let campaign = CampaignBuilder::new().faults(60).cycles(8);

    let build = || {
        FlowBuilder::new(&device, &design)
            .tmr(TmrConfig::paper_p2())
            .seed(1)
            .shards(1)
            .cache_dir(&dir)
            .build()
    };

    let cold = build();
    let cold_result = cold.campaign(&campaign).unwrap();
    let cold_routed = cold.routed().unwrap();
    let store = cold.store().expect("cache_dir attaches a store");
    assert!(store.stats().writes > 0, "cold run persists artifacts");

    // A fresh flow (fresh memory cache, fresh store handle over the same
    // directory) must serve everything from disk: a disk hit on `campaign`
    // answers without ever running a stage, and `routed` decodes the stored
    // design without synthesizing or placing.
    let warm = build();
    let warm_result = warm.campaign(&campaign).unwrap();
    assert_eq!(*warm_result, *cold_result);
    let warm_routed = warm.routed().unwrap();
    assert_eq!(
        warm_routed.bitstream().words(),
        cold_routed.bitstream().words()
    );

    let warm_store = warm.store().unwrap();
    assert_eq!(warm_store.stats().writes, 0, "warm run recomputes nothing");
    let mem = warm.cache().stage_stats();
    for stage in ["tmr", "place"] {
        let ran = mem.iter().any(|&(name, _)| name == stage);
        assert!(!ran, "warm run must not reach the {stage} stage");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_sweep_reports_disk_hits() {
    let dir = temp_dir("sweep");
    let design = tmr_fpga::designs::counter(3);
    let store = Arc::new(Store::open(&dir).unwrap());
    let run = |store: &Arc<Store>| {
        Sweep::new(&design)
            .variant("standard", None)
            .variant("tmr_p2", Some(TmrConfig::paper_p2()))
            .on_device(&Device::small(8, 8))
            .shards(1)
            .campaign(CampaignBuilder::new().faults(40).cycles(8))
            .store(store.clone())
            .run()
            .unwrap()
    };

    let cold = run(&store);
    let disk = cold.disk.expect("sweep with a store reports disk stats");
    assert!(disk.writes > 0);
    assert!(cold.disk_stage_stats("campaign").is_some());

    // Same directory, fresh store handle and fresh memory cache: every
    // variant's campaign comes straight from disk.
    let warm_store = Arc::new(Store::open(&dir).unwrap());
    let warm = run(&warm_store);
    let disk = warm.disk.unwrap();
    assert_eq!(disk.writes, 0, "warm sweep recomputes nothing");
    assert!(disk.hits > 0);
    for (name, campaign) in cold.campaigns() {
        assert_eq!(
            campaign,
            warm.campaigns().find(|(n, _)| *n == name).unwrap().1
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
