//! Differential test harness for the generalized fault models.
//!
//! Three families of guarantees are pinned here:
//!
//! 1. **Shard transparency** — for *every* fault model (single-bit,
//!    geometric MBU clusters, accumulated upsets per scrub interval) the
//!    sharded campaign outcomes are bit-identical to the sequential
//!    reference, for 1/2/3/8 shards; the merged result follows fault-list
//!    order, never shard-completion order (the accumulated-fault regression
//!    test pins the exact outcome sequence under 8 shards).
//! 2. **Degenerate equivalence** — `Mbu` with a 1-bit pattern and
//!    `Accumulate { upsets_per_scrub: 1 }` reproduce the `SingleBit` results
//!    *exactly* on the paper's P2 TMR configuration.
//! 3. **Sampling laws** (property-based) — fault sampling under any model is
//!    deterministic per seed, cluster bits are always in bounds, distinct
//!    and sorted, and flipping a set of bits twice (one scrub interval and
//!    its repair) restores the pristine bitstream.

use proptest::prelude::*;
use std::sync::OnceLock;
use tmr_fpga::arch::{Bitstream, Device, MbuPattern};
use tmr_fpga::designs::counter;
use tmr_fpga::faultsim::{CampaignBuilder, FaultList, FaultModel};
use tmr_fpga::flow::{FlowBuilder, Sweep};
use tmr_fpga::pnr::RoutedDesign;
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::ArtifactCache;

/// The routed paper-P2 TMR counter shared by every test in this harness
/// (implementing it once keeps the proptest cases cheap).
fn routed_p2() -> &'static (Device, RoutedDesign) {
    static ROUTED: OnceLock<(Device, RoutedDesign)> = OnceLock::new();
    ROUTED.get_or_init(|| {
        let device = Device::small(8, 8);
        let flow = FlowBuilder::new(&device, &counter(4))
            .tmr(TmrConfig::paper_p2())
            .seed(5)
            .build();
        let routed = flow.routed().expect("implementation").design().clone();
        (device, routed)
    })
}

/// One representative of every fault-model family, plus the degenerate
/// 1-bit variants.
fn all_models() -> Vec<FaultModel> {
    let mut models = vec![FaultModel::SingleBit];
    for pattern in MbuPattern::ALL {
        models.push(FaultModel::Mbu { pattern });
    }
    for upsets_per_scrub in [1, 3] {
        models.push(FaultModel::Accumulate { upsets_per_scrub });
    }
    models
}

#[test]
fn sharded_campaigns_match_sequential_for_every_model() {
    let (device, routed) = routed_p2();
    for model in all_models() {
        let campaign = CampaignBuilder::new()
            .faults(150)
            .cycles(8)
            .fault_model(model);
        let reference = campaign.clone().sequential().run(device, routed).unwrap();
        assert_eq!(reference.injected(), 150, "{model}");
        for shards in [1, 2, 3, 8] {
            let sharded = campaign.clone().shards(shards).run(device, routed).unwrap();
            assert_eq!(reference, sharded, "{model}, shards = {shards}");
        }
    }
}

#[test]
fn degenerate_models_reproduce_single_bit_results_exactly() {
    let (device, routed) = routed_p2();
    let campaign = CampaignBuilder::new().faults(300).cycles(10).sequential();
    let single = campaign.clone().run(device, routed).unwrap();
    let mbu_single = campaign
        .clone()
        .mbu(MbuPattern::Single)
        .run(device, routed)
        .unwrap();
    assert_eq!(single, mbu_single, "a 1-bit MBU cluster is a single upset");
    let accumulate_one = campaign.clone().accumulate(1).run(device, routed).unwrap();
    assert_eq!(
        single, accumulate_one,
        "one upset per scrub interval is the single-bit model"
    );
    for outcome in &single.outcomes {
        assert_eq!(outcome.bits, vec![outcome.bit]);
    }
}

#[test]
fn multi_bit_models_flip_their_sampled_clusters() {
    let (device, routed) = routed_p2();
    let list = FaultList::build(device, routed);
    let model = FaultModel::Mbu {
        pattern: MbuPattern::Tile2x2,
    };
    let campaign = CampaignBuilder::new()
        .faults(120)
        .cycles(8)
        .fault_model(model);
    let expected = list.sample_faults(device, &model, 120, campaign.options().sampling_seed());
    let result = campaign.sequential().run(device, routed).unwrap();
    assert_eq!(result.injected(), expected.len().min(120));
    let geometry = device.config_layout().geometry();
    for (outcome, fault) in result.outcomes.iter().zip(&expected) {
        assert_eq!(&outcome.bits, fault);
        assert_eq!(outcome.bit, fault[0]);
        assert_eq!(
            outcome.bits,
            geometry.cluster(outcome.bit, MbuPattern::Tile2x2)
        );
    }
}

/// Regression test for the merge order of accumulated-fault campaigns: the
/// result sequence is defined by fault-list order (ascending anchor bits,
/// exactly the dealt scrub intervals), not by shard completion order — under
/// 8 shards the last shard regularly finishes before the first.
#[test]
fn accumulated_outcomes_keep_fault_list_order_under_8_shards() {
    let (device, routed) = routed_p2();
    let model = FaultModel::Accumulate {
        upsets_per_scrub: 4,
    };
    let campaign = CampaignBuilder::new()
        .faults(96)
        .cycles(8)
        .fault_model(model);

    let sequential = campaign.clone().sequential().run(device, routed).unwrap();
    let sharded = campaign.clone().shards(8).run(device, routed).unwrap();
    assert_eq!(sequential, sharded);

    // The exact sequence: outcome i is scrub interval i of the dealt sample.
    let list = FaultList::build(device, routed);
    let expected = list.sample_faults(device, &model, 96, campaign.options().sampling_seed());
    assert_eq!(sharded.injected(), expected.len());
    for (index, (outcome, fault)) in sharded.outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(&outcome.bits, fault, "outcome {index}");
        assert_eq!(outcome.bits.len(), 4, "outcome {index}");
        assert_eq!(outcome.bit, fault[0], "outcome {index}");
    }
    // Anchors strictly ascend — the visible fingerprint of fault-list order
    // (any completion-order merge would interleave the shards' ranges).
    assert!(sharded
        .outcomes
        .windows(2)
        .all(|pair| pair[0].bit < pair[1].bit));
}

/// The staged pipeline serves all three fault-model families from one shared
/// artifact cache over the five paper variants, and the single-bit results
/// are exactly what the default (pre-fault-model) campaign produces.
#[test]
fn sweep_runs_all_three_models_from_one_cache() {
    let device = Device::small(12, 12);
    let base = counter(4);
    let cache = ArtifactCache::shared();
    let campaign = CampaignBuilder::new().faults(80).cycles(8).sequential();

    let sweep_for = |model: FaultModel| {
        Sweep::paper(&base)
            .on_device(&device)
            .cache(cache.clone())
            .campaign(campaign.clone().fault_model(model))
    };

    let single = sweep_for(FaultModel::SingleBit).run().unwrap();
    assert_eq!(single.variants.len(), 5);
    let misses_after_first = cache.stats().misses;

    let mbu = sweep_for(FaultModel::Mbu {
        pattern: MbuPattern::PairInFrame,
    })
    .run()
    .unwrap();
    let accumulated = sweep_for(FaultModel::Accumulate {
        upsets_per_scrub: 3,
    })
    .run()
    .unwrap();

    // Later sweeps re-run only their campaigns: every implementation stage
    // and golden trace comes from the shared cache.
    let stats = cache.stats();
    assert_eq!(
        stats.misses,
        misses_after_first + 2 * 5,
        "only the 5 campaigns per additional model may miss: {stats}"
    );

    for report in [&mbu, &accumulated] {
        for (variant, reference) in report.variants.iter().zip(&single.variants) {
            assert_eq!(variant.name, reference.name);
            assert_eq!(
                variant.routed.bitstream(),
                reference.routed.bitstream(),
                "{}: implementations are model-independent",
                variant.name
            );
        }
    }

    // The single-bit sweep is bit-identical to the pre-fault-model API: a
    // default campaign (no fault_model call) over the same flow.
    for variant in &single.variants {
        let flow = {
            let mut builder = FlowBuilder::new(&device, &base).cache(cache.clone());
            if let Some(config) = variant.config.clone() {
                builder = builder.tmr(config);
            }
            builder.build()
        };
        let default_result = flow.campaign(&campaign).unwrap();
        assert_eq!(
            variant.campaign.as_deref(),
            Some(&*default_result),
            "{}: SingleBit is the default model",
            variant.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault sampling under any model is deterministic per seed, and every
    /// fault is a sorted set of distinct in-bounds bits with the sampled
    /// count honoured.
    #[test]
    fn sampling_is_deterministic_sorted_and_in_bounds(
        seed in 0u64..1_000,
        count in 1usize..160,
        choice in 0usize..3,
        pattern_index in 0usize..4,
        upsets in 1usize..6
    ) {
        let (device, routed) = routed_p2();
        let model = match choice {
            0 => FaultModel::SingleBit,
            1 => FaultModel::Mbu { pattern: MbuPattern::ALL[pattern_index] },
            _ => FaultModel::Accumulate { upsets_per_scrub: upsets },
        };
        let list = FaultList::build(device, routed);
        let faults = list.sample_faults(device, &model, count, seed);
        prop_assert_eq!(&faults, &list.sample_faults(device, &model, count, seed));
        prop_assert!(faults.len() <= count);
        let bit_count = device.config_layout().bit_count();
        for fault in &faults {
            prop_assert!(!fault.is_empty());
            prop_assert!(fault.len() <= model.bits_per_fault());
            prop_assert!(fault.windows(2).all(|pair| pair[0] < pair[1]));
            prop_assert!(fault.iter().all(|&bit| bit < bit_count));
        }
        // Fault order is anchor order: ascending lowest bits.
        prop_assert!(faults.windows(2).all(|pair| pair[0][0] < pair[1][0]));
    }

    /// Flipping the accumulated upsets of a scrub interval twice — or
    /// scrubbing from the pristine reference — restores the configuration
    /// exactly: the multi-bit fault model never leaks state between
    /// experiments.
    #[test]
    fn multi_flip_and_scrub_restore_the_pristine_bitstream(
        len in 1usize..2048,
        programmed in prop::collection::vec(0usize..2048, 0..32),
        upsets in prop::collection::vec(0usize..2048, 1..32)
    ) {
        let mut pristine = Bitstream::zeros(len);
        for &bit in programmed.iter().filter(|&&b| b < len) {
            pristine.set(bit, true);
        }
        let mut upsets: Vec<usize> = upsets.into_iter().filter(|&b| b < len).collect();
        upsets.sort_unstable();
        upsets.dedup();

        let mut faulty = pristine.clone();
        faulty.flip_all(&upsets);
        prop_assert_eq!(pristine.diff(&faulty).len(), upsets.len());
        for &bit in &upsets {
            prop_assert_eq!(faulty.get(bit), !pristine.get(bit));
        }

        let mut repaired = faulty.clone();
        repaired.flip_all(&upsets);
        prop_assert_eq!(&repaired, &pristine, "flip_all is an involution over sets");

        faulty.scrub(&pristine);
        prop_assert_eq!(&faulty, &pristine, "a scrub restores any accumulation");
    }
}
