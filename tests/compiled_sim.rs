//! Differential harness for the compiled bit-parallel fault simulator.
//!
//! The contract under test: the compiled engine (levelized instruction
//! stream, event-driven dirty-level scheduling, 64- and 256-lane packed
//! words, cone-deduplicated fault batching, fan-out-cone incremental
//! re-simulation, full multi-pass mode for bridging faults) produces
//! **bit-for-bit identical** [`CampaignResult`]s to the interpreting
//! simulator — the semantics oracle kept alive behind `TMR_SIM=interp` —
//! for:
//!
//! * all five paper variants (`standard`, `tmr_p1`, `tmr_p2`, `tmr_p3`,
//!   `tmr_p3_nv`),
//! * all three fault models (single-bit, geometric MBU clusters,
//!   accumulated upsets per scrub interval),
//! * 1 / 2 / 8 worker shards,
//! * both event-driven (`TMR_SIM=compiled`) and always-full-level
//!   (`TMR_SIM=compiled-full`) scheduling, and
//! * arbitrary fault-sample sizes and orderings, including counts that
//!   cross the 64- and 256-lane word boundaries and random sampling seeds
//!   that reshuffle which faults share a cone-batched word (property
//!   tests).
//!
//! Everything here compares whole `CampaignResult` values, so any
//! divergence in outcome, first-error cycle, classification or simulated
//! count fails loudly.

use proptest::prelude::*;
use std::sync::OnceLock;
use tmr_fpga::arch::{Device, MbuPattern};
use tmr_fpga::designs::counter;
use tmr_fpga::faultsim::{CampaignBuilder, CampaignResult, FaultModel, SimBackend};
use tmr_fpga::flow::{FlowBuilder, Sweep};
use tmr_fpga::pnr::RoutedDesign;
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::ArtifactCache;

/// The three fault-model families at a non-degenerate setting each.
fn models() -> [FaultModel; 3] {
    [
        FaultModel::SingleBit,
        FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2,
        },
        FaultModel::Accumulate {
            upsets_per_scrub: 3,
        },
    ]
}

/// The five paper variants of the 4-bit counter, routed once and shared by
/// every test in this harness.
fn routed_variants() -> &'static (Device, Vec<(String, RoutedDesign)>) {
    static ROUTED: OnceLock<(Device, Vec<(String, RoutedDesign)>)> = OnceLock::new();
    ROUTED.get_or_init(|| {
        let device = Device::small(12, 12);
        let cache = ArtifactCache::shared();
        let sweep = Sweep::paper(&counter(4)).on_device(&device).cache(cache);
        let (_, flows) = sweep.flows().expect("synthesis");
        let variants = flows
            .into_iter()
            .map(|(name, flow)| {
                let routed = flow.routed().expect("implementation").design().clone();
                (name, routed)
            })
            .collect();
        (device, variants)
    })
}

/// Runs one campaign on the chosen backend.
fn run(
    device: &Device,
    routed: &RoutedDesign,
    model: FaultModel,
    faults: usize,
    shards: usize,
    backend: SimBackend,
) -> CampaignResult {
    run_seeded(device, routed, model, faults, shards, backend, 1)
}

/// Runs one campaign on the chosen backend with an explicit sampling seed
/// (the seed shuffles which bits are drawn, and with them the fault order
/// the cone batcher regroups).
#[allow(clippy::too_many_arguments)]
fn run_seeded(
    device: &Device,
    routed: &RoutedDesign,
    model: FaultModel,
    faults: usize,
    shards: usize,
    backend: SimBackend,
    sampling_seed: u64,
) -> CampaignResult {
    CampaignBuilder::new()
        .faults(faults)
        .cycles(8)
        .fault_model(model)
        .shards(shards)
        .backend(backend)
        .sampling_seed(sampling_seed)
        .run(device, routed)
        .expect("flow netlists are always simulable")
}

/// The headline differential matrix: five paper variants × three fault
/// models × 1/2/8 shards, compiled ≡ interpreter bit for bit.
#[test]
fn compiled_matches_interpreter_on_all_variants_models_and_shards() {
    let (device, variants) = routed_variants();
    for (name, routed) in variants {
        for model in models() {
            let oracle = run(device, routed, model, 120, 1, SimBackend::Interpreter);
            assert!(oracle.injected() > 0, "{name}/{model}: empty campaign");
            for shards in [1usize, 2, 8] {
                let compiled = run(device, routed, model, 120, shards, SimBackend::Compiled);
                assert_eq!(
                    compiled, oracle,
                    "{name}/{model}: compiled (shards = {shards}) diverged from the interpreter"
                );
            }
        }
    }
}

/// The TMR variants must actually exercise the masking logic: the compiled
/// engine agrees with the oracle on campaigns that contain both wrong
/// answers and voted-out faults.
#[test]
fn differential_coverage_includes_wrong_answers_and_masked_faults() {
    let (device, variants) = routed_variants();
    let standard = &variants[0];
    assert_eq!(standard.0, "standard");
    let oracle = run(
        device,
        &standard.1,
        FaultModel::SingleBit,
        200,
        1,
        SimBackend::Interpreter,
    );
    let wrong = oracle.wrong_answers();
    assert!(
        wrong > 0 && wrong < oracle.injected(),
        "the unprotected design must mix wrong answers ({wrong}) and masked faults"
    );
    let tmr = variants.iter().find(|(name, _)| name == "tmr_p2").unwrap();
    let tmr_oracle = run(
        device,
        &tmr.1,
        FaultModel::SingleBit,
        200,
        1,
        SimBackend::Interpreter,
    );
    assert!(
        tmr_oracle.wrong_answer_percent() < oracle.wrong_answer_percent(),
        "TMR must mask more faults than the unprotected design"
    );
}

/// `TMR_SIM=interp`-style backend selection is exposed programmatically and
/// resolves the documented default.
#[test]
fn backend_default_is_compiled() {
    // The test environment does not set TMR_SIM, so the env resolution must
    // pick the compiled engine.
    if std::env::var("TMR_SIM").is_err() {
        assert_eq!(SimBackend::from_env(), SimBackend::Compiled);
    }
    assert_eq!(SimBackend::default(), SimBackend::Compiled);
}

/// Streaming sessions and batch runs stay identical across backends: the
/// batched 64-lane words never leak across batch boundaries.
#[test]
fn streaming_batches_match_across_backends() {
    let (device, variants) = routed_variants();
    let (_, routed) = variants.iter().find(|(n, _)| n == "tmr_p2").unwrap();
    let campaign = CampaignBuilder::new().faults(150).cycles(8).batch_size(17);
    let compiled = campaign
        .clone()
        .backend(SimBackend::Compiled)
        .session(device, routed)
        .unwrap()
        .run();
    let interpreted = campaign
        .backend(SimBackend::Interpreter)
        .session(device, routed)
        .unwrap()
        .run();
    assert_eq!(compiled, interpreted);
}

/// The flow facade wires the cached compiled artifact into its campaigns;
/// the memoized result equals a from-scratch interpreter run.
#[test]
fn facade_campaigns_use_the_compiled_stage_and_stay_bit_identical() {
    let device = Device::small(8, 8);
    let flow = FlowBuilder::new(&device, &counter(4))
        .tmr(TmrConfig::paper_p2())
        .seed(5)
        .build();
    let campaign = CampaignBuilder::new().faults(100).cycles(8);
    let via_flow = flow.campaign(&campaign).unwrap();
    // The compiled stage is a first-class cached artifact.
    let compiled = flow.compiled().unwrap();
    assert!(compiled.netlist().op_count() > 0);
    let again = flow.compiled().unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&compiled, &again),
        "repeated compiled-stage requests must be served from the cache"
    );

    let routed = flow.routed().unwrap();
    let oracle = campaign
        .backend(SimBackend::Interpreter)
        .sequential()
        .run(&device, routed.design())
        .unwrap();
    assert_eq!(*via_flow, oracle);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fault-sample sizes — spanning sub-word counts, counts that
    /// leave the last packed word partially filled, and counts that cross
    /// both the 64-lane and the 256-lane word boundaries — match the
    /// sequential interpreter on every fault model family, for both the
    /// event-driven and the always-full-level compiled engine.
    #[test]
    fn random_lane_counts_match_the_sequential_interpreter(
        faults in 1usize..=300,
        model_index in 0usize..3,
        shards_index in 0usize..3,
    ) {
        let (device, variants) = routed_variants();
        let (_, routed) = &variants[2]; // tmr_p2: mixes masked and observable faults
        let model = models()[model_index];
        let shards = [1usize, 3, 8][shards_index];
        let oracle = run(device, routed, model, faults, 1, SimBackend::Interpreter);
        let compiled = run(device, routed, model, faults, shards, SimBackend::Compiled);
        prop_assert_eq!(&compiled, &oracle);
        let full = run(device, routed, model, faults, shards, SimBackend::CompiledFull);
        prop_assert_eq!(&full, &oracle);
    }

    /// Random sampling seeds reshuffle the fault order — and with it which
    /// faults the cone batcher packs into one word, how much their fan-out
    /// cones overlap, and which lanes sit next to faults with empty or
    /// disjoint cones. The per-lane outcomes must come back in fault-list
    /// order regardless, bit-identical to the interpreter.
    #[test]
    fn random_fault_order_and_cone_overlap_match_the_interpreter(
        sampling_seed in 0u64..1_000_000,
        faults in 32usize..=160,
        shards_index in 0usize..3,
    ) {
        let (device, variants) = routed_variants();
        let (_, routed) = &variants[2]; // tmr_p2
        let shards = [1usize, 2, 8][shards_index];
        let model = FaultModel::SingleBit;
        let oracle = run_seeded(
            device, routed, model, faults, 1, SimBackend::Interpreter, sampling_seed,
        );
        let compiled = run_seeded(
            device, routed, model, faults, shards, SimBackend::Compiled, sampling_seed,
        );
        prop_assert_eq!(compiled, oracle);
    }

    /// Clustered MBU faults are the cone-overlap stress case: every cluster
    /// perturbs several adjacent configuration bits, so neighbouring faults
    /// share large parts of their fan-out cones (and bridging members force
    /// words into the multi-pass mode). All geometric patterns must stay
    /// bit-identical to the interpreter across shard counts.
    #[test]
    fn clustered_mbu_cone_overlap_matches_the_interpreter(
        pattern_index in 0usize..3,
        sampling_seed in 0u64..1_000_000,
        faults in 16usize..=120,
        shards_index in 0usize..3,
    ) {
        let (device, variants) = routed_variants();
        let (_, routed) = &variants[2]; // tmr_p2
        let pattern = [
            MbuPattern::PairInFrame,
            MbuPattern::PairAcrossFrames,
            MbuPattern::Tile2x2,
        ][pattern_index];
        let model = FaultModel::Mbu { pattern };
        let shards = [1usize, 2, 8][shards_index];
        let oracle = run_seeded(
            device, routed, model, faults, 1, SimBackend::Interpreter, sampling_seed,
        );
        let compiled = run_seeded(
            device, routed, model, faults, shards, SimBackend::Compiled, sampling_seed,
        );
        prop_assert_eq!(compiled, oracle);
    }
}
