//! Differential tests of the deterministic parallel router and the
//! incremental placement cost.
//!
//! The parallel negotiation (`RouterOptions::workers` > 1, or `TMR_ROUTE`
//! unset on a multi-core machine) must be a pure performance knob: for any
//! worker count it has to produce the *same* `RouteTree`s — and therefore
//! byte-identical bitstreams — as the sequential oracle (`workers: 1`,
//! reachable in production as `TMR_ROUTE=seq`). This suite pins that claim
//! across the five paper variants, every recorded fuzz-regression design,
//! and a property test over generated designs × worker counts 1/2/4/8.
//!
//! The annealing placer's incremental per-net bounding-box cost is pinned
//! the same way: the maintained wirelength must equal the from-scratch
//! recompute on the final placement (and a `debug_assertions` check inside
//! the placer verifies it per move).

use proptest::prelude::*;
use std::collections::HashMap;
use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::flow::{device_for, Sweep};
use tmr_fpga::fuzz::{variant_config, RegressionCase};
use tmr_fpga::netlist::{NetId, Netlist};
use tmr_fpga::pnr::{
    place, placement_wirelength, route, Placement, PlacerOptions, RouteTree, RoutedDesign,
    RouterOptions,
};
use tmr_fpga::synth::{lower, optimize, techmap};

/// Routes `netlist` with `workers` worker threads (1 = the sequential
/// oracle).
fn route_with_workers(
    device: &Device,
    netlist: &Netlist,
    placement: &Placement,
    workers: usize,
) -> HashMap<NetId, RouteTree> {
    let options = RouterOptions {
        workers,
        ..RouterOptions::default()
    };
    route(device, netlist, placement, &options).expect("design routes")
}

/// Asserts that every parallel worker count reproduces the sequential
/// oracle's `RouteTree`s and a byte-identical assembled bitstream.
fn assert_workers_match_sequential(device: &Device, netlist: &Netlist, placement: &Placement) {
    let oracle = route_with_workers(device, netlist, placement, 1);
    let oracle_design = RoutedDesign::assemble(device, netlist, placement.clone(), oracle.clone());
    for workers in [2usize, 4, 8] {
        let routes = route_with_workers(device, netlist, placement, workers);
        assert_eq!(
            routes, oracle,
            "{workers}-worker negotiation diverged from the sequential oracle's RouteTrees"
        );
        let design = RoutedDesign::assemble(device, netlist, placement.clone(), routes);
        assert_eq!(
            design.bitstream(),
            oracle_design.bitstream(),
            "{workers}-worker bitstream is not byte-identical to the sequential oracle"
        );
    }
}

#[test]
fn paper_variants_route_identically_for_any_worker_count() {
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(24, 24);
    let (device, flows) = Sweep::paper(&base)
        .on_device(&device)
        .flows()
        .expect("the paper variants implement on the 24x24 device");
    for (name, flow) in flows {
        let synthesized = flow.synthesized().expect("synthesis succeeds");
        let placed = flow.placed().expect("placement succeeds");
        eprintln!("checking variant {name}");
        assert_workers_match_sequential(&device, synthesized.netlist(), placed.placement());
    }
}

#[test]
fn fuzz_regression_designs_route_identically_for_any_worker_count() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions");
    let mut cases: Vec<_> = std::fs::read_dir(&dir)
        .expect("fuzz_regressions directory exists")
        .map(|entry| entry.expect("directory entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "case"))
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no regression cases found in {dir:?}");

    for path in cases {
        eprintln!("checking case {}", path.display());
        let text = std::fs::read_to_string(&path).expect("case file reads");
        let case = RegressionCase::parse(&text).expect("case file parses");
        let design = case.spec.to_design().expect("case design rebuilds");
        let tmr = variant_config(&case.variant).expect("case variant is known");
        let protected = match &tmr {
            Some(config) => {
                tmr_fpga::tmr::apply_tmr(&design, config).expect("TMR transform succeeds")
            }
            None => design,
        };
        let netlist = techmap(&optimize(&lower(&protected).expect("lowering"))).expect("mapping");
        let device = device_for(case.params, &[&netlist], 0.5);
        let placement = place(
            &device,
            &netlist,
            &PlacerOptions {
                seed: case.pnr_seed,
                ..PlacerOptions::default()
            },
        )
        .expect("case design places");
        assert_workers_match_sequential(&device, &netlist, &placement);
    }
}

#[test]
fn incremental_placement_cost_matches_full_recompute() {
    let base = FirFilter::small_filter().to_design();
    let device = Device::small(24, 24);
    let (device, flows) = Sweep::paper(&base)
        .on_device(&device)
        .flows()
        .expect("the paper variants implement on the 24x24 device");
    for (name, flow) in flows {
        let synthesized = flow.synthesized().expect("synthesis succeeds");
        let placed = flow.placed().expect("placement succeeds");
        let maintained = placed.placement().wirelength();
        let recomputed = placement_wirelength(&device, synthesized.netlist(), placed.placement());
        assert_eq!(
            maintained, recomputed,
            "variant {name}: incremental wirelength diverged from the full recompute"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generated designs route identically for workers 1/2/4/8 — the same
    /// parallel-vs-sequential contract the fixed designs pin, explored over
    /// the fuzz generator's design space (and, through `arch_for_seed`'s
    /// rotation inside `device_for`, over lean channel configurations).
    #[test]
    fn generated_designs_route_identically_for_any_worker_count(seed in 0u64..512) {
        let config = tmr_fpga::designs::GeneratorConfig::sampled(seed);
        let design = tmr_fpga::designs::generate(seed, &config);
        let params = tmr_fpga::fuzz::arch_for_seed(seed);
        let netlist = techmap(&optimize(&lower(&design).expect("lowering"))).expect("mapping");
        let device = device_for(params, &[&netlist], 0.5);
        let placement = place(
            &device,
            &netlist,
            &PlacerOptions { seed, ..PlacerOptions::default() },
        )
        .expect("generated design places");

        let maintained = placement.wirelength();
        let recomputed = placement_wirelength(&device, &netlist, &placement);
        prop_assert_eq!(maintained, recomputed);

        let oracle = route_with_workers(&device, &netlist, &placement, 1);
        for workers in [2usize, 4, 8] {
            let routes = route_with_workers(&device, &netlist, &placement, workers);
            prop_assert_eq!(&routes, &oracle, "workers {} diverged", workers);
        }
    }
}
