//! The tracing hard contract, at the facade level: campaign results are
//! byte-identical with tracing off, on, or at any sink — for every fault
//! model — and a traced flow records the full stage-span taxonomy.
//!
//! The tracer is a process singleton, so the tests in this binary serialize
//! on one mutex and reset the configuration between runs.

use std::sync::{Mutex, MutexGuard};
use tmr_fpga::arch::{Device, MbuPattern};
use tmr_fpga::faultsim::CampaignBuilder;
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::trace::{self, TraceConfig};

/// Serializes tests touching the process-global tracer and leaves it in a
/// clean in-memory state.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    trace::configure(TraceConfig::memory());
    let _ = trace::drain_tree();
    guard
}

/// Runs one small campaign on a fresh flow (fresh cache — nothing memoized
/// across runs) and returns the byte-exact `Debug` rendering of its result.
fn run_campaign(campaign: &CampaignBuilder, config: TraceConfig) -> String {
    trace::configure(config);
    let device = Device::small(16, 16);
    let design = tmr_fpga::designs::counter(6);
    let flow = FlowBuilder::new(&device, &design)
        .tmr(TmrConfig::paper_p2())
        .build();
    let result = flow
        .campaign(campaign)
        .expect("flow designs are always simulable");
    trace::configure(TraceConfig::off());
    format!("{result:?}")
}

#[test]
fn results_are_byte_identical_with_tracing_on_or_off_for_every_fault_model() {
    let _guard = lock();
    let models: [(&str, CampaignBuilder); 3] = [
        ("single-bit", CampaignBuilder::new()),
        ("mbu", CampaignBuilder::new().mbu(MbuPattern::PairInFrame)),
        ("accumulate", CampaignBuilder::new().accumulate(3)),
    ];
    for (label, base) in models {
        let campaign = base.faults(200).cycles(8);
        let untraced = run_campaign(&campaign, TraceConfig::off());
        let traced = run_campaign(&campaign, TraceConfig::memory());
        let _ = trace::drain_tree();
        assert_eq!(
            untraced, traced,
            "{label}: tracing must not perturb campaign results"
        );
    }
}

#[test]
fn a_traced_flow_records_the_full_stage_span_taxonomy() {
    let _guard = lock();
    let device = Device::small(16, 16);
    let design = tmr_fpga::designs::counter(6);
    let flow = FlowBuilder::new(&device, &design)
        .tmr(TmrConfig::paper_p2())
        .trace(TraceConfig::memory())
        .build();
    flow.analyzed().expect("analysis succeeds");
    let result = flow
        .campaign(&CampaignBuilder::new().faults(120).cycles(8).shards(3))
        .expect("flow designs are always simulable");
    trace::configure(TraceConfig::off());
    let tree = trace::drain_tree();

    for stage in [
        "stage.tmr",
        "stage.synth",
        "stage.place",
        "stage.route",
        "stage.analyze",
        "stage.compiled",
        "stage.golden",
        "stage.campaign",
    ] {
        assert_eq!(tree.count(stage), 1, "expected exactly one {stage} span");
    }

    // The campaign stage carries the result attributes, the shard spans
    // merged deterministically under it, and the inner synthesis spans
    // nested under the synth stage.
    let campaign_span = tree.find("stage.campaign").expect("campaign stage span");
    assert_eq!(
        campaign_span.attr("injected").and_then(|a| a.as_u64()),
        Some(result.injected() as u64)
    );
    assert_eq!(tree.count("campaign.shard"), 3, "one span per worker shard");
    assert!(tree.count("synth.lower") == 1 && tree.count("synth.techmap") == 1);
    assert!(
        tree.count("route.iteration") >= 1,
        "router telemetry events present"
    );
    assert!(tree
        .counters
        .iter()
        .any(|(name, value)| name == "campaign.faults_simulated" && *value > 0));
}
