//! Determinism tests of the staged pipeline and the streaming campaign
//! session:
//!
//! * cached and cold pipeline runs produce **bit-identical** bitstreams and
//!   campaign results across placement seeds and shard counts (property
//!   test) — the artifact cache may change *when* work happens, never what
//!   it produces;
//! * an early-stopped session's outcomes equal the matching **prefix** of
//!   the full batch run;
//! * the unified error type chains to the failing layer.

use proptest::prelude::*;
use std::sync::Arc;
use tmr_fpga::arch::Device;
use tmr_fpga::designs::counter;
use tmr_fpga::faultsim::{CampaignBuilder, EarlyStop};
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::{ArtifactCache, Error};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For arbitrary placement seeds, shard counts and fault counts, a flow
    /// backed by a shared (warm) cache and a flow recomputing everything
    /// from scratch produce the same bitstream and the same campaign
    /// result, and re-requesting an artifact returns the cached `Arc`.
    #[test]
    fn cached_and_cold_flows_are_bit_identical(
        seed in 1u64..4,
        shards in 1usize..4,
        faults in 40usize..90
    ) {
        let device = Device::small(8, 8);
        let design = counter(4);
        let cache = ArtifactCache::shared();

        let warm = FlowBuilder::new(&device, &design)
            .tmr(TmrConfig::paper_p2())
            .seed(seed)
            .shards(shards)
            .cache(cache.clone())
            .build();
        let cold = FlowBuilder::new(&device, &design)
            .tmr(TmrConfig::paper_p2())
            .seed(seed)
            .shards(shards)
            .build();

        let warm_routed = warm.routed().unwrap();
        let cold_routed = cold.routed().unwrap();
        prop_assert_eq!(warm_routed.bitstream(), cold_routed.bitstream());
        prop_assert_eq!(warm_routed.fingerprint(), cold_routed.fingerprint());

        let campaign = CampaignBuilder::new().faults(faults).cycles(8);
        let warm_result = warm.campaign(&campaign).unwrap();
        let cold_result = cold.campaign(&campaign).unwrap();
        prop_assert_eq!(&*warm_result, &*cold_result);

        // Second requests are served from the cache: the same allocation
        // comes back and the hit counters move.
        let again = warm.routed().unwrap();
        prop_assert!(Arc::ptr_eq(&warm_routed, &again));
        let result_again = warm.campaign(&campaign).unwrap();
        prop_assert!(Arc::ptr_eq(&warm_result, &result_again));
        prop_assert!(cache.stats().hits > 0);
    }

    /// Flows over *different* inputs never alias in the cache: changing the
    /// placement seed changes the implementation artifacts but not the
    /// sampled fault population.
    #[test]
    fn distinct_seeds_do_not_alias_in_a_shared_cache(seed_a in 1u64..3, offset in 1u64..3) {
        let seed_b = seed_a + offset;
        let device = Device::small(8, 8);
        let design = counter(4);
        let cache = ArtifactCache::shared();
        let flow = |seed| {
            FlowBuilder::new(&device, &design)
                .tmr(TmrConfig::paper_p2())
                .seed(seed)
                .cache(cache.clone())
                .build()
        };
        let a = flow(seed_a).routed().unwrap();
        let b = flow(seed_b).routed().unwrap();
        prop_assert!(!Arc::ptr_eq(&a, &b));
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
        // Different placements, same netlist: the synthesis artifact was
        // shared (one miss), the implementation artifacts were not.
        prop_assert_eq!(a.netlist().stats(), b.netlist().stats());
    }
}

#[test]
fn early_stopped_session_is_a_prefix_of_the_batch_campaign() {
    // The unprotected counter has a high wrong-answer rate, so a loose
    // confidence bound stops long before the sample is exhausted.
    let device = Device::small(8, 8);
    let design = counter(4);
    let flow = FlowBuilder::new(&device, &design).build();
    let routed = flow.routed().expect("implementation");

    let campaign = CampaignBuilder::new().faults(500).cycles(8).sequential();
    let full = flow.campaign(&campaign).expect("campaign");

    let streaming = campaign
        .batch_size(50)
        .early_stop(EarlyStop::at_half_width(0.08).with_min_injected(50));
    let mut session = flow.campaign_session(&routed, &streaming).expect("session");
    while session.next_batch().is_some() {}
    assert!(session.stopped_early(), "the loose bound must fire");
    let streamed = session.into_result();

    assert!(streamed.injected() < full.injected());
    assert_eq!(
        streamed.outcomes[..],
        full.outcomes[..streamed.injected()],
        "an early-stopped session must equal the matching prefix of the batch run"
    );
}

#[test]
fn flow_errors_chain_to_the_failing_layer() {
    use std::error::Error as _;

    // A 3x3 grid cannot hold a TMR'd counter: placement must fail, and the
    // unified error must carry the layer error in its source chain.
    let device = Device::small(3, 3);
    let design = counter(4);
    let flow = FlowBuilder::new(&device, &design)
        .tmr(TmrConfig::paper_p2())
        .build();
    let error = flow.routed().expect_err("the device is far too small");
    assert!(matches!(error, Error::Pnr(_)));
    assert_eq!(error.to_string(), "place-and-route failed");
    let source = error.source().expect("source chain").to_string();
    assert!(
        source.contains("sites"),
        "the placement diagnostic must surface: {source}"
    );
    // A failed stage is not cached: retrying on a big enough device works
    // even with the same inputs (fresh flow, shared failure-free cache).
    assert_eq!(flow.cache().stats().entries, 2, "tmr + synth only");
}
