//! The differential fuzzing harness and its regression corpus.
//!
//! Three layers:
//!
//! * **Corpus replay** — every `tests/fuzz_regressions/*.case` file is a
//!   shrunken design that once violated an oracle; each is re-run through
//!   the full flow and all oracles and must now pass (the bug it found is
//!   fixed, and stays fixed).
//! * **Smoke fuzz** — a small fixed seed range of the end-to-end fuzzer
//!   (generator → TMR variant → auto device → place/route → three fault
//!   models × three oracles) runs on every `cargo test`.
//! * **Generator and shrinker properties** — generated designs synthesize
//!   to `validate`-clean netlists, generation is deterministic per seed and
//!   monotone in the node budget, the corpus text format round-trips, and
//!   shrinking preserves the predicate it minimizes under.

use proptest::prelude::*;
use tmr_fpga::designs::spec::shrink;
use tmr_fpga::designs::{generate, DesignSpec, GeneratorConfig};
use tmr_fpga::fuzz::{run_seed, FuzzOptions, RegressionCase};
use tmr_fpga::synth::{lower, optimize, techmap, Design, WordNode};

/// `Design` is intentionally opaque (no `PartialEq`); its node list is the
/// canonical structural identity for equality checks.
fn nodes_of(design: &Design) -> Vec<WordNode> {
    design.nodes().map(|(_, node)| node.clone()).collect()
}

/// The checked-in regression corpus, shrunken reproducers of every bug the
/// fuzzer has found.
fn corpus() -> Vec<(String, RegressionCase)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("corpus directory exists") {
        let path = entry.expect("corpus directory is readable").path();
        if path.extension().is_none_or(|ext| ext != "case") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("corpus case is readable");
        let case = RegressionCase::parse(&text)
            .unwrap_or_else(|err| panic!("{name} does not parse: {err}"));
        cases.push((name, case));
    }
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

#[test]
fn regression_corpus_is_nonempty_and_parses() {
    let cases = corpus();
    assert!(
        !cases.is_empty(),
        "the corpus must hold at least one shrunken reproducer"
    );
    for (name, case) in &cases {
        // A well-formed case round-trips through its own text form and its
        // design rebuilds.
        let reparsed = RegressionCase::parse(&case.to_string()).expect("round-trip parses");
        assert_eq!(case, &reparsed, "{name} text form is not canonical");
        case.spec.to_design().expect("corpus design rebuilds");
    }
}

#[test]
fn regression_corpus_replays_clean() {
    for (name, case) in corpus() {
        let failures = case.check().expect("corpus case replays");
        assert!(
            failures.is_empty(),
            "{name} (kind {}) violates an oracle again:\n  {}",
            case.kind,
            failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
}

#[test]
fn smoke_fuzz_holds_all_oracles() {
    // Budget-reduced end-to-end sweep; rotates through all five TMR
    // variants. The heavy 200+-seed run lives in the tmr-fuzz bin.
    let options = FuzzOptions {
        faults: 60,
        cycles: 6,
        shards: 3,
        ..FuzzOptions::default()
    };
    for seed in 0..5 {
        let report = run_seed(seed, &options);
        assert!(
            report.passed(),
            "seed {seed}: {}",
            report
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated design synthesizes through the full pipeline to a
    /// `validate`-clean netlist — the generator's core contract.
    #[test]
    fn generated_designs_synthesize_validate_clean(seed in 0u64..10_000) {
        let design = generate(seed, &GeneratorConfig::sampled(seed));
        let mapped = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        prop_assert!(mapped.validate().is_ok());
    }

    /// Generation is a pure function of (seed, config).
    #[test]
    fn generation_is_deterministic_per_seed(seed in 0u64..10_000) {
        let config = GeneratorConfig::sampled(seed);
        prop_assert_eq!(nodes_of(&generate(seed, &config)), nodes_of(&generate(seed, &config)));
    }

    /// A larger node budget extends the smaller design, so design size is
    /// monotone in the `nodes` knob.
    #[test]
    fn node_budget_is_monotone(seed in 0u64..10_000, small in 2usize..12, extra in 1usize..12) {
        let mut config = GeneratorConfig::sampled(seed);
        config.nodes = small;
        let smaller = generate(seed, &config);
        config.nodes = small + extra;
        let larger = generate(seed, &config);
        prop_assert!(larger.node_count() >= smaller.node_count());
    }

    /// The corpus text format round-trips generated designs node-exactly.
    #[test]
    fn spec_round_trips_generated_designs(seed in 0u64..10_000) {
        let design = generate(seed, &GeneratorConfig::sampled(seed));
        let spec = DesignSpec::from_design(&design).unwrap();
        let rebuilt = DesignSpec::parse(&spec.to_string()).unwrap().to_design().unwrap();
        prop_assert_eq!(nodes_of(&design), nodes_of(&rebuilt));
    }

    /// Whatever predicate the shrinker minimizes under, the shrunken design
    /// still satisfies it — shrinking never loses the failure it preserves.
    /// (The fuzzer instantiates the predicate as "this oracle kind still
    /// fails"; here a cheap structural stand-in exercises the same machinery
    /// on every generated shape.)
    #[test]
    fn shrinking_preserves_the_predicate(seed in 0u64..10_000, threshold in 1usize..6) {
        let design = generate(seed, &GeneratorConfig::sampled(seed));
        let spec = DesignSpec::from_design(&design).unwrap();
        let predicate = |candidate: &DesignSpec| {
            candidate
                .to_design()
                .map(|d| d.stats().registers >= threshold)
                .unwrap_or(false)
        };
        if predicate(&spec) {
            let shrunk = shrink(&spec, predicate);
            prop_assert!(predicate(&shrunk));
            prop_assert!(shrunk.rows.len() <= spec.rows.len());
        }
    }
}
