//! Walks one paper design from TMR transform to static `CriticalityReport`
//! through the staged pipeline, then uses the analysis to prune a dynamic
//! fault-injection campaign.
//!
//! The static analyzer classifies **every** configuration bit — no sampling,
//! no simulation — into benign / single-domain / domain-crossing verdicts;
//! the domain-crossing bits are the voter-defeating upsets of the paper. The
//! pruned campaign then skips the simulations the analysis proves maskable
//! while reproducing the exact same outcomes.
//!
//! ```text
//! cargo run --release --example static_analysis
//! ```

use tmr_fpga::analyze::PruneWith;
use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::CampaignBuilder;
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::tmr::TmrConfig;

fn main() -> Result<(), tmr_fpga::Error> {
    // 1. TMR transform and implementation of the reduced paper filter: one
    //    flow, lazy stage artifacts.
    let base = FirFilter::small_filter().to_design();
    let config = TmrConfig::paper_p2();
    let device = Device::small(20, 20);
    let flow = FlowBuilder::new(&device, &base)
        .tmr(config.clone())
        .seed(1)
        .build();
    let routed = flow.routed()?;
    println!(
        "implemented {} on a {}x{} device ({} programmed bits)\n",
        config.label,
        device.cols(),
        device.rows(),
        routed.bitstream().count_ones()
    );

    // 2. Exhaustive static criticality analysis (no simulation) — the
    //    `Analyzed` stage of the pipeline.
    let analyzed = flow.analyzed()?;
    let report = analyzed.report();
    println!("{report}\n");
    println!("as JSON: {}\n", report.to_json());

    // 3. The same campaign, unpruned and statically pruned: identical
    //    outcomes, far fewer simulations. Both reuse the cached golden
    //    trace.
    let campaign = CampaignBuilder::new().faults(1500).cycles(16);
    let unpruned = flow.campaign(&campaign)?;
    let pruned = flow.campaign(&campaign.clone().prune_with(analyzed.analysis()))?;
    assert_eq!(pruned.outcomes, unpruned.outcomes);
    println!(
        "campaign over {} sampled faults: unpruned simulates {}, pruned simulates {} \
         ({:.0} % of the simulations skipped), wrong answers identical: {}",
        unpruned.injected(),
        unpruned.simulated,
        pruned.simulated,
        100.0 * (1.0 - pruned.simulated as f64 / unpruned.simulated.max(1) as f64),
        pruned.wrong_answers(),
    );
    println!("artifact cache: {}", flow.cache().stats());
    Ok(())
}
