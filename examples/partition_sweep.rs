//! Sweeps the voter-partition strategies of the paper over the 11-tap FIR
//! filter at the word level, reporting voter cost and cross-domain exposure —
//! the design-space trade-off of Section 2 of the paper — and then runs a
//! compiled-backend fault campaign on every variant of the small filter,
//! printing per-variant faults/sec so the example doubles as a quick perf
//! smoke for the event-driven simulator.
//!
//! ```text
//! cargo run --release --example partition_sweep
//! ```

use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::CampaignBuilder;
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::tmr::{apply_tmr, partition_report, TmrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = FirFilter::paper_filter().to_design();
    println!("base design: {base}\n");
    println!(
        "{:<10} {:>14} {:>12} {:>16} {:>20} {:>22}",
        "variant",
        "fabric voters",
        "partitions",
        "max partition",
        "mean partition",
        "cross-domain pairs"
    );
    for config in TmrConfig::paper_presets() {
        let tmr = apply_tmr(&base, &config)?;
        let report = partition_report(&tmr);
        println!(
            "{:<10} {:>14} {:>12} {:>16} {:>20.1} {:>22}",
            config.label,
            tmr.stats().voters,
            report.partition_count(),
            report.max_partition_nodes(),
            report.mean_partition_nodes(),
            report.total_cross_domain_pairs()
        );
    }
    println!(
        "\nThe paper's trade-off in numbers: the maximum partition (p1) buys small\n\
         partitions at the price of many voters (and the cross-domain wiring they\n\
         imply), while the minimum partition (p3/p3_nv) concentrates the whole\n\
         datapath into a few huge partitions whose internal bridges defeat TMR."
    );

    // Perf smoke: inject the same fault list into every variant of the small
    // filter on the compiled backend (the default — set TMR_SIM=interp or
    // TMR_SIM=compiled-full to A/B the other engines) and report the
    // end-to-end campaign rate plus the engine's observability counters.
    let small = FirFilter::small_filter().to_design();
    // 24x24 = 1152 LUT sites: tmr_p1, the largest variant, needs 957.
    let device = Device::small(24, 24);
    let campaign = CampaignBuilder::new().faults(600).cycles(12);
    println!(
        "\ncompiled-backend campaign smoke (600 faults, 12 cycles):\n\
         {:<10} {:>10} {:>12} {:>12} {:>14}",
        "variant", "simulated", "wrong [%]", "time [ms]", "faults/sec"
    );
    for config in TmrConfig::paper_presets() {
        let label = config.label.clone();
        let flow = FlowBuilder::new(&device, &small).tmr(config).build();
        // Route outside the timed region: the smoke measures the simulator,
        // not the place-and-route front end.
        flow.routed()?;
        let start = std::time::Instant::now();
        let result = flow.campaign(&campaign)?;
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:>10} {:>12.2} {:>12.2} {:>14.0}",
            label,
            result.simulated,
            result.wrong_answer_percent(),
            1e3 * elapsed.as_secs_f64(),
            result.injected() as f64 / elapsed.as_secs_f64()
        );
        println!("           sim: {}", result.stats);
    }
    Ok(())
}
