//! Sweeps the voter-partition strategies of the paper over the 11-tap FIR
//! filter at the word level, reporting voter cost and cross-domain exposure —
//! the design-space trade-off of Section 2 of the paper, without running the
//! (slower) place-and-route and fault-injection steps.
//!
//! ```text
//! cargo run --release --example partition_sweep
//! ```

use tmr_fpga::designs::FirFilter;
use tmr_fpga::tmr::{apply_tmr, partition_report, TmrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = FirFilter::paper_filter().to_design();
    println!("base design: {base}\n");
    println!(
        "{:<10} {:>14} {:>12} {:>16} {:>20} {:>22}",
        "variant",
        "fabric voters",
        "partitions",
        "max partition",
        "mean partition",
        "cross-domain pairs"
    );
    for config in TmrConfig::paper_presets() {
        let tmr = apply_tmr(&base, &config)?;
        let report = partition_report(&tmr);
        println!(
            "{:<10} {:>14} {:>12} {:>16} {:>20.1} {:>22}",
            config.label,
            tmr.stats().voters,
            report.partition_count(),
            report.max_partition_nodes(),
            report.mean_partition_nodes(),
            report.total_cross_domain_pairs()
        );
    }
    println!(
        "\nThe paper's trade-off in numbers: the maximum partition (p1) buys small\n\
         partitions at the price of many voters (and the cross-domain wiring they\n\
         imply), while the minimum partition (p3/p3_nv) concentrates the whole\n\
         datapath into a few huge partitions whose internal bridges defeat TMR."
    );
    Ok(())
}
