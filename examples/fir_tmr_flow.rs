//! Implements the paper's 11-tap FIR filter (unprotected and TMR_p2) through
//! the staged pipeline — synthesis, placement, routing, bitstream generation
//! — and prints the resource/bitstream report of Table 2 for those two
//! variants.
//!
//! This is the full-scale flow and takes a few minutes in release mode; use
//! `--example quickstart` for a fast tour.
//!
//! ```text
//! cargo run --release --example fir_tmr_flow
//! ```

use tmr_fpga::arch::{Device, DeviceParams};
use tmr_fpga::designs::FirFilter;
use tmr_fpga::flow::Sweep;
use tmr_fpga::tmr::{estimate_resources, TmrConfig};

fn main() -> Result<(), tmr_fpga::Error> {
    let base = FirFilter::paper_filter().to_design();

    // A fabric with the XC2S200E architecture parameters, scaled up so that
    // the TMR variant fits comfortably (our mapping has no carry chains).
    let mut params = DeviceParams::xc2s200e_like();
    params.cols = 54;
    params.rows = 44;
    let device = Device::new(params);
    println!(
        "device: {}x{} tiles, {} LUT sites, {} configuration bits",
        device.cols(),
        device.rows(),
        device.lut_sites().len(),
        device.config_layout().bit_count()
    );

    let sweep = Sweep::new(&base)
        .variant("standard", None)
        .variant("tmr_p2", Some(TmrConfig::paper_p2()))
        .on_device(&device);
    let (_, flows) = sweep.flows()?;
    for (name, flow) in flows {
        let start = std::time::Instant::now();
        let routed = flow.routed()?;
        let resources = estimate_resources(routed.netlist());
        let bits = routed.design().bit_report(&device);
        println!(
            "{name:>9}: {:>4} slices, {:>5} LUTs, {:>4} FFs, depth {:>2}, est. {:>5.1} MHz, \
             {:>6} routing bits, {:>5} LUT bits, {:>4} FF bits ({:.0} s)",
            resources.slices,
            resources.luts,
            resources.flip_flops,
            resources.logic_depth,
            resources.fmax_mhz,
            bits.routing_bits + bits.clb_mux_bits,
            bits.lut_bits,
            bits.ff_bits,
            start.elapsed().as_secs_f64()
        );
    }
    Ok(())
}
