//! The campaign service used in-process (no daemon, no sockets): submit
//! two fault-injection jobs, watch their interleaved progress events, then
//! re-submit one of them and see it served from the disk store with zero
//! simulations.
//!
//! ```text
//! cargo run --release --example campaign_service
//! ```

use std::sync::Arc;
use tmr_fpga::Store;
use tmr_serve::{CampaignService, Event, JobSpec, ServiceConfig};

fn main() {
    // A throwaway disk store; point this at a persistent directory (or set
    // TMR_CACHE_DIR and use Store::from_env) to survive restarts.
    let dir = std::env::temp_dir().join(format!("tmr-campaign-example-{}", std::process::id()));
    let store = Arc::new(Store::open(&dir).expect("store directory is writable"));

    let (service, events) = CampaignService::new(ServiceConfig {
        workers: 2,
        store: Some(store.clone()),
    });

    // Two variants of the same design; the shared artifact cache means the
    // TMR transform and synthesis of common stages are not repeated.
    for variant in ["p2", "p3"] {
        let mut spec = JobSpec::new("counter:4");
        spec.variant = variant.to_string();
        spec.faults = 160;
        spec.cycles = 8;
        spec.batch = 32;
        spec.device = Some((8, 8));
        service
            .submit(Some(variant.to_string()), spec)
            .expect("the spec validates");
    }

    // Jobs advance one batch per turn, so with two workers the progress
    // events of both jobs interleave.
    let mut results = 0;
    while results < 2 {
        let event = events.recv().expect("the service is running");
        println!("{}", event.render());
        if matches!(event, Event::Result { .. } | Event::Error { .. }) {
            results += 1;
        }
    }

    // Same spec again: answered from the store, zero batches simulated.
    let mut spec = JobSpec::new("counter:4");
    spec.variant = "p2".to_string();
    spec.faults = 160;
    spec.cycles = 8;
    spec.batch = 32;
    spec.device = Some((8, 8));
    service
        .submit(Some("p2-again".to_string()), spec)
        .expect("the spec validates");
    loop {
        let event = events.recv().expect("the service is running");
        println!("{}", event.render());
        if matches!(event, Event::Result { .. } | Event::Error { .. }) {
            break;
        }
    }

    println!("disk store: {}", store.stats());
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
