//! Runs a reduced fault-injection campaign (the Table 3 / Table 4 experiment)
//! on a 5-tap FIR filter, comparing all four TMR voter-partitioning variants
//! against the unprotected design and printing the effect classification of
//! the error-causing upsets.
//!
//! ```text
//! cargo run --release --example fault_campaign
//! ```

use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::{CampaignOptions, FaultClass};
use tmr_fpga::flow;
use tmr_fpga::tmr::paper_variants;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = FirFilter::small_filter().to_design();
    // 24x24 = 1152 LUT sites: tmr_p1, the largest variant, needs 957.
    let device = Device::small(24, 24);
    let options = CampaignOptions {
        faults: 1500,
        cycles: 16,
        ..CampaignOptions::default()
    };

    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>16}",
        "design", "injected", "wrong [#]", "wrong [%]", "cross-domain"
    );
    for (name, design) in paper_variants(&base)? {
        let routed = flow::implement(&device, &design, 1)?;
        // Sharded over all CPU cores; bit-identical to the sequential path.
        let result = flow::run_campaign_parallel(&device, &routed, &options, None)?;
        println!(
            "{:<10} {:>10} {:>12} {:>14.2} {:>15.0}%",
            name,
            result.injected(),
            result.wrong_answers(),
            result.wrong_answer_percent(),
            100.0 * result.cross_domain_error_fraction()
        );
        let classification = result.error_classification();
        if !classification.is_empty() {
            print!("           effects: ");
            for class in FaultClass::ALL {
                if let Some(count) = classification.get(&class) {
                    print!("{}={count} ", class.label());
                }
            }
            println!();
        }
    }
    Ok(())
}
