//! Runs a reduced fault-injection campaign (the Table 3 / Table 4 experiment)
//! on a 5-tap FIR filter as **one sweep**: all four TMR voter-partitioning
//! variants against the unprotected design, with shared pipeline artifacts,
//! plus a streaming early-stopped session on the most vulnerable variant.
//!
//! ```text
//! cargo run --release --example fault_campaign
//! ```

use tmr_fpga::arch::Device;
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::{CampaignBuilder, EarlyStop, FaultClass};
use tmr_fpga::flow::{FlowBuilder, Sweep};

fn main() -> Result<(), tmr_fpga::Error> {
    let base = FirFilter::small_filter().to_design();
    // 24x24 = 1152 LUT sites: tmr_p1, the largest variant, needs 957.
    let device = Device::small(24, 24);
    let campaign = CampaignBuilder::new().faults(1500).cycles(16);

    // One sweep call covers all five variants; every flow shares the cache.
    // The static analysis rides along so a `TMR_TRACE` run of this example
    // exercises every pipeline stage.
    let sweep = Sweep::paper(&base)
        .on_device(&device)
        .analyze(true)
        .campaign(campaign.clone());
    let report = sweep.run()?;

    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>16}",
        "design", "injected", "wrong [#]", "wrong [%]", "cross-domain"
    );
    for (name, result) in report.campaigns() {
        println!(
            "{:<10} {:>10} {:>12} {:>14.2} {:>15.0}%",
            name,
            result.injected(),
            result.wrong_answers(),
            result.wrong_answer_percent(),
            100.0 * result.cross_domain_error_fraction()
        );
        let classification = result.error_classification();
        if !classification.is_empty() {
            print!("           effects: ");
            for class in FaultClass::ALL {
                if let Some(count) = classification.get(&class) {
                    print!("{}={count} ", class.label());
                }
            }
            println!();
        }
    }
    println!("artifact cache: {}", report.cache);

    // Streaming variant: a session over the unprotected design that stops as
    // soon as the wrong-answer rate is pinned down to ±5 %. Its outcomes are
    // the exact prefix of the batch campaign above. Sharing the sweep's
    // cache makes the routed artifact and golden trace free.
    let flow = FlowBuilder::new(&device, &base)
        .cache(sweep.cache_handle().clone())
        .build();
    let routed = flow.routed()?;
    let streaming = campaign
        .clone()
        .batch_size(100)
        .early_stop(EarlyStop::at_half_width(0.05));
    let mut session = flow.campaign_session(&routed, &streaming)?;
    while let Some(batch) = session.next_batch() {
        let injected = batch.len();
        let progress = session.progress();
        eprintln!(
            "  streamed {injected} faults ({} of {} total, rate {:.1} % ± {:.1} %)",
            progress.injected,
            progress.planned,
            100.0 * progress.wrong_answer_rate,
            100.0 * session.ci_half_width()
        );
    }
    let stopped_early = session.stopped_early();
    let streamed = session.into_result();
    println!(
        "early-stopped session: {} of {} faults injected (stopped early: {stopped_early}), \
         wrong-answer rate {:.2} %",
        streamed.injected(),
        campaign.options().faults(),
        streamed.wrong_answer_percent()
    );

    // With TMR_TRACE=human|jsonl|chrome set, write out everything recorded
    // above; a no-op (returning `None`) when tracing is off.
    if let Some(path) = tmr_fpga::trace::flush() {
        eprintln!("trace written to {}", path.display());
    }
    Ok(())
}
