//! Fault-injection campaigns under the generalized fault models: one sweep
//! per model — geometry-aware multi-bit upsets (adjacent-bit pairs, 2×2
//! tiles) and accumulated upsets per scrub interval — over the paper's five
//! TMR variants of a reduced FIR filter, all served from **one** shared
//! artifact cache (the implementations and golden traces are computed once;
//! only the campaigns differ between models).
//!
//! The single-bit row is the paper's experiment; the other rows answer what
//! it cannot: how fast TMR degrades when one strike flips a cluster, and how
//! many upsets a scrub interval may accumulate before each voter
//! partitioning starts failing.
//!
//! ```text
//! cargo run --release --example mbu_campaign
//! ```

use tmr_fpga::arch::{Device, MbuPattern};
use tmr_fpga::designs::FirFilter;
use tmr_fpga::faultsim::{CampaignBuilder, FaultModel};
use tmr_fpga::flow::Sweep;
use tmr_fpga::ArtifactCache;

fn main() -> Result<(), tmr_fpga::Error> {
    let base = FirFilter::small_filter().to_design();
    // 24x24 = 1152 LUT sites: tmr_p1, the largest variant, needs 957.
    let device = Device::small(24, 24);
    let campaign = CampaignBuilder::new().faults(800).cycles(12);
    let cache = ArtifactCache::shared();

    let models = [
        FaultModel::SingleBit,
        FaultModel::Mbu {
            pattern: MbuPattern::PairInFrame,
        },
        FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2,
        },
        FaultModel::Accumulate {
            upsets_per_scrub: 2,
        },
        FaultModel::Accumulate {
            upsets_per_scrub: 8,
        },
    ];

    let mut rows = Vec::new();
    for model in models {
        let report = Sweep::paper(&base)
            .on_device(&device)
            .cache(cache.clone())
            .campaign(campaign.clone().fault_model(model))
            .run()?;
        rows.push((model.label(), report));
    }

    let names: Vec<String> = rows[0]
        .1
        .variants
        .iter()
        .map(|variant| variant.name.clone())
        .collect();
    print!("{:<18}", "model");
    for name in &names {
        print!(" {name:>10}");
    }
    println!("   (wrong answers [%])");
    for (label, report) in &rows {
        print!("{label:<18}");
        for (_, result) in report.campaigns() {
            print!(" {:>10.2}", result.wrong_answer_percent());
        }
        println!();
    }

    // The cache did the heavy lifting exactly once: the four later sweeps
    // hit every implementation artifact and golden trace.
    let stats = cache.stats();
    println!("shared artifact cache: {stats}");
    assert!(
        stats.hits > stats.misses,
        "later sweeps must be served from the cache"
    );

    // Sanity: the degenerate scrub interval reproduces the single-bit row.
    let single = Sweep::paper(&base)
        .on_device(&device)
        .cache(cache.clone())
        .campaign(campaign.clone().accumulate(1))
        .run()?;
    for (variant, reference) in single.variants.iter().zip(&rows[0].1.variants) {
        assert_eq!(
            variant.campaign, reference.campaign,
            "accumulate(1) must reproduce the single-bit results"
        );
    }
    println!("accumulate(1) reproduces the single-bit campaign bit-identically");
    Ok(())
}
