//! Quickstart: protect a small design with TMR, implement it on the FPGA
//! model and inject a handful of configuration upsets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tmr_fpga::arch::Device;
use tmr_fpga::faultsim::CampaignOptions;
use tmr_fpga::flow;
use tmr_fpga::synth::Design;
use tmr_fpga::tmr::{apply_tmr, TmrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture a small word-level design: y = register(a*5 + b).
    let mut design = Design::new("mac");
    let a = design.add_input("a", 8);
    let b = design.add_input("b", 8);
    let product = design.add_mul_const("product", a, 5, 12);
    let sum = design.add_add("sum", product, b, 12);
    let q = design.add_register("q", sum);
    design.add_output("y", q);

    // 2. Protect it with TMR using the paper's medium partition (a voter
    //    after each adder, voted registers).
    let protected = apply_tmr(&design, &TmrConfig::paper_p2())?;
    println!("protected design: {protected}");

    // 3. Implement both versions on a small island FPGA.
    let device = Device::small(12, 12);
    let plain = flow::implement(&device, &design, 1)?;
    let tmr = flow::implement(&device, &protected, 1)?;
    println!(
        "unprotected: {} LUTs, {} programmed bits",
        plain.netlist().stats().luts,
        plain.bitstream().count_ones()
    );
    println!(
        "TMR p2:      {} LUTs, {} programmed bits",
        tmr.netlist().stats().luts,
        tmr.bitstream().count_ones()
    );

    // 4. Inject random configuration upsets into both and compare.
    let options = CampaignOptions {
        faults: 600,
        cycles: 16,
        ..CampaignOptions::default()
    };
    let plain_result = flow::run_campaign_parallel(&device, &plain, &options, None)?;
    let tmr_result = flow::run_campaign_parallel(&device, &tmr, &options, None)?;
    println!("{plain_result}");
    println!("{tmr_result}");
    println!(
        "robustness improvement: {:.1}x fewer wrong answers",
        plain_result.wrong_answer_percent() / tmr_result.wrong_answer_percent().max(0.01)
    );
    Ok(())
}
