//! Quickstart: protect a small design with TMR, implement it on the FPGA
//! model through the staged pipeline and inject a handful of configuration
//! upsets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tmr_fpga::arch::Device;
use tmr_fpga::faultsim::CampaignBuilder;
use tmr_fpga::flow::FlowBuilder;
use tmr_fpga::synth::Design;
use tmr_fpga::tmr::TmrConfig;
use tmr_fpga::ArtifactCache;

fn main() -> Result<(), tmr_fpga::Error> {
    // 1. Capture a small word-level design: y = register(a*5 + b).
    let mut design = Design::new("mac");
    let a = design.add_input("a", 8);
    let b = design.add_input("b", 8);
    let product = design.add_mul_const("product", a, 5, 12);
    let sum = design.add_add("sum", product, b, 12);
    let q = design.add_register("q", sum);
    design.add_output("y", q);

    // 2. Two flows on a small island FPGA, sharing one artifact cache: the
    //    unprotected design and the paper's medium partition (a voter after
    //    each adder, voted registers). Stage artifacts are computed lazily.
    let device = Device::small(12, 12);
    let cache = ArtifactCache::shared();
    let plain = FlowBuilder::new(&device, &design)
        .cache(cache.clone())
        .build();
    let tmr = FlowBuilder::new(&device, &design)
        .tmr(TmrConfig::paper_p2())
        .cache(cache.clone())
        .build();
    println!("protected design: {}", tmr.protected()?);

    let plain_routed = plain.routed()?;
    let tmr_routed = tmr.routed()?;
    println!(
        "unprotected: {} LUTs, {} programmed bits",
        plain_routed.netlist().stats().luts,
        plain_routed.bitstream().count_ones()
    );
    println!(
        "TMR p2:      {} LUTs, {} programmed bits",
        tmr_routed.netlist().stats().luts,
        tmr_routed.bitstream().count_ones()
    );

    // 3. Inject random configuration upsets into both and compare. The
    //    campaigns are sharded over all CPU cores and reuse the cached
    //    golden traces.
    let campaign = CampaignBuilder::new().faults(600).cycles(16);
    let plain_result = plain.campaign(&campaign)?;
    let tmr_result = tmr.campaign(&campaign)?;
    println!("{plain_result}");
    println!("{tmr_result}");
    println!(
        "robustness improvement: {:.1}x fewer wrong answers",
        plain_result.wrong_answer_percent() / tmr_result.wrong_answer_percent().max(0.01)
    );
    println!("artifact cache: {}", cache.stats());
    Ok(())
}
